//! CLOCK (second-chance) replacement — the cheap hardware alternative to
//! the CMT's exact LRU.
//!
//! The paper's CMT is an LRU stack, which in SRAM needs either a shift
//! structure or a doubly-linked list. Real controllers often approximate
//! LRU with CLOCK: one reference bit per entry and a sweeping hand. This
//! module exists for the `ablation_cmt_policy` bench, which quantifies how
//! much hit rate the approximation costs on the paper's workloads — and
//! whether SAWL's split heuristic (which needs the LRU halves) is worth
//! the exact stack.

use std::collections::HashMap;

/// A CLOCK cache with the same counter interface as [`crate::cmt::Cmt`].
#[derive(Debug, Clone)]
pub struct ClockCache<V> {
    /// Slot storage: key, value, referenced bit. `None` = empty slot.
    slots: Vec<Option<(u64, V, bool)>>,
    map: HashMap<u64, usize>,
    hand: usize,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl<V: Copy> ClockCache<V> {
    /// Cache with `capacity` slots (>= 2).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 2, "clock cache needs at least two slots");
        Self {
            slots: vec![None; capacity],
            map: HashMap::with_capacity(capacity * 2),
            hand: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// Capacity in entries.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Current occupancy.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache holds nothing.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Hits counted.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Misses counted.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Evictions performed.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Hit rate so far.
    pub fn hit_rate(&self) -> f64 {
        let t = self.hits + self.misses;
        if t == 0 {
            0.0
        } else {
            self.hits as f64 / t as f64
        }
    }

    /// Look up `key`; a hit sets its reference bit.
    pub fn lookup(&mut self, key: u64) -> Option<V> {
        match self.map.get(&key) {
            Some(&idx) => {
                self.hits += 1;
                let slot = self.slots[idx].as_mut().expect("mapped slot is filled");
                slot.2 = true;
                Some(slot.1)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Insert `key -> val`, evicting via the clock hand if full. Returns
    /// the evicted key, if any.
    pub fn insert(&mut self, key: u64, val: V) -> Option<u64> {
        if let Some(&idx) = self.map.get(&key) {
            let slot = self.slots[idx].as_mut().expect("mapped slot is filled");
            slot.1 = val;
            slot.2 = true;
            return None;
        }
        // Find a victim slot: first empty, else sweep clearing ref bits.
        let victim = loop {
            let idx = self.hand;
            self.hand = (self.hand + 1) % self.slots.len();
            match &mut self.slots[idx] {
                None => break idx,
                Some((_, _, referenced)) => {
                    if *referenced {
                        *referenced = false;
                    } else {
                        break idx;
                    }
                }
            }
        };
        let evicted = self.slots[victim].take().map(|(k, _, _)| {
            self.map.remove(&k);
            self.evictions += 1;
            k
        });
        self.slots[victim] = Some((key, val, true));
        self.map.insert(key, victim);
        evicted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_hit_miss() {
        let mut c: ClockCache<u32> = ClockCache::new(2);
        assert_eq!(c.lookup(1), None);
        c.insert(1, 10);
        assert_eq!(c.lookup(1), Some(10));
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn second_chance_protects_referenced_entries() {
        let mut c: ClockCache<u32> = ClockCache::new(2);
        c.insert(1, 1);
        c.insert(2, 2);
        // Everything is referenced, so inserting 3 sweeps both bits clear
        // and evicts slot 0 (key 1), leaving slot 1 = (2, unreferenced)
        // with the hand pointing at it.
        assert_eq!(c.insert(3, 3), Some(1));
        // Referencing 3 protects it: the next insertion must claim the
        // unreferenced 2, not sweep 3 away.
        c.lookup(3);
        assert_eq!(c.insert(4, 4), Some(2));
        assert_eq!(c.lookup(3), Some(3), "referenced entry was evicted");
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn eviction_happens_only_when_full() {
        let mut c: ClockCache<u32> = ClockCache::new(4);
        for k in 0..4 {
            assert_eq!(c.insert(k, k as u32), None);
        }
        assert!(c.insert(99, 99).is_some());
        assert_eq!(c.evictions(), 1);
        assert_eq!(c.len(), 4);
    }

    #[test]
    fn reinsert_updates_value_in_place() {
        let mut c: ClockCache<u32> = ClockCache::new(2);
        c.insert(5, 1);
        c.insert(5, 2);
        assert_eq!(c.lookup(5), Some(2));
        assert_eq!(c.len(), 1);
        assert_eq!(c.evictions(), 0);
    }

    #[test]
    fn clock_approximates_lru_on_skewed_traffic() {
        use crate::cmt::{Cmt, CmtLookup};
        // Hot set of 32 keys inside a 256-key working set over a 64-entry
        // cache: both policies should hit often, CLOCK within a few points
        // of LRU.
        let mut clock: ClockCache<u64> = ClockCache::new(64);
        let mut lru: Cmt<u64> = Cmt::new(64);
        let mut x = 0xC10CCu64;
        for _ in 0..100_000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let key = if x & 3 != 0 { x % 32 } else { x % 256 };
            if clock.lookup(key).is_none() {
                clock.insert(key, key);
            }
            if matches!(lru.lookup(key), CmtLookup::Miss) {
                lru.insert(key, key);
            }
        }
        let diff = (lru.hit_rate() - clock.hit_rate()).abs();
        assert!(diff < 0.08, "clock strays {diff} from lru");
        assert!(clock.hit_rate() > 0.5);
    }
}
