//! Physical layout of a tiered device: data lines + reserved translation
//! region.
//!
//! "The IMT table is stored in a reserved space of the NVM devices with its
//! entries packed into memory lines that are called translation lines, in
//! contrast to the data lines that hold user data" (§3.1). The layout
//! places the data lines at the bottom of the physical address space and
//! the translation region above them; the translation region is padded to a
//! power of two so it can be wear-leveled with an XOR-based Security
//! Refresh instance.

use serde::{Deserialize, Serialize};

use crate::imt::ENTRIES_PER_TRANSLATION_LINE;

/// Layout derived from the data size and the initial granularity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TieredLayout {
    /// User-visible data lines (power of two).
    pub data_lines: u64,
    /// Initial wear-leveling granularity P, in lines (power of two).
    pub granularity: u64,
    /// Number of IMT entries (= data_lines / granularity).
    pub imt_entries: u64,
    /// Translation lines actually holding entries.
    pub translation_lines: u64,
    /// Size of the reserved translation region (power of two, >=
    /// `translation_lines`).
    pub translation_space: u64,
}

impl TieredLayout {
    /// Compute the layout for `data_lines` user lines at initial
    /// granularity `p` lines per region.
    pub fn new(data_lines: u64, p: u64) -> Self {
        assert!(data_lines.is_power_of_two(), "data lines must be a power of two");
        assert!(p.is_power_of_two() && p <= data_lines, "granularity must divide the space");
        let imt_entries = data_lines / p;
        let translation_lines = imt_entries.div_ceil(ENTRIES_PER_TRANSLATION_LINE);
        let translation_space = translation_lines.next_power_of_two();
        Self { data_lines, granularity: p, imt_entries, translation_lines, translation_space }
    }

    /// First physical line of the translation region.
    #[inline]
    pub fn translation_base(&self) -> u64 {
        self.data_lines
    }

    /// Total physical lines the device must provide.
    #[inline]
    pub fn total_lines(&self) -> u64 {
        self.data_lines + self.translation_space
    }

    /// Fraction of the device consumed by the translation region.
    pub fn reserved_fraction(&self) -> f64 {
        self.translation_space as f64 / self.total_lines() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entry_and_line_counts() {
        let l = TieredLayout::new(1 << 16, 4);
        assert_eq!(l.imt_entries, 1 << 14);
        assert_eq!(l.translation_lines, (1u64 << 14).div_ceil(6));
        assert!(l.translation_space.is_power_of_two());
        assert!(l.translation_space >= l.translation_lines);
        assert_eq!(l.translation_base(), 1 << 16);
    }

    #[test]
    fn reserved_fraction_is_small() {
        // The paper reports 0.3% for a 64 GB device at 64M regions; at our
        // scale the share stays in the low percent range.
        let l = TieredLayout::new(1 << 20, 4);
        assert!(l.reserved_fraction() < 0.07, "{}", l.reserved_fraction());
    }

    #[test]
    fn coarse_granularity_needs_fewer_translation_lines() {
        let fine = TieredLayout::new(1 << 16, 4);
        let coarse = TieredLayout::new(1 << 16, 64);
        assert!(coarse.translation_lines < fine.translation_lines);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_odd_data_size() {
        let _ = TieredLayout::new(1000, 4);
    }
}
