//! Write-ahead journal for mapping-table updates.
//!
//! Merge, split and exchange each rewrite one or more IMT regions (entry +
//! translation-line + owner-map updates) plus moved data. A power loss in
//! the middle leaves the mapping torn: some granules translated through the
//! new region descriptor, the rest through the old one. The journal makes
//! the *intent* durable before the first NVM write of an operation, so
//! recovery can decide per operation whether to roll forward (replay the
//! recorded updates — they are idempotent) or roll back (discard the
//! record; the old mapping is still intact because nothing landed).
//!
//! ## Durability model
//!
//! Real controllers keep a small journal area in a capacitor-backed SRAM
//! or battery-protected buffer (cf. the GTD registers, which the paper's
//! architecture holds on chip and which must likewise survive power loss
//! for the mapping to be recoverable at all). We model the journal the
//! same way: appends are atomic with respect to power loss and are **not**
//! charged as NVM wear — which also keeps zero-fault runs byte-identical
//! to the fault-free path (pinned by `scenario_equivalence.rs`).

/// One region descriptor write: "region `base` now maps through
/// `(prn, key, q_log2)`". Applying it is idempotent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegionUpdate {
    /// First logical region number of the region (aligned to its size).
    pub base: u64,
    /// Physical region number the region maps to.
    pub prn: u64,
    /// XOR key of the region.
    pub key: u64,
    /// log2 of the region size in lines (the IMT entry's `q_log2`).
    pub q_log2: u8,
}

/// Which structural operation the journaled updates belong to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// Pairwise region merge (§3.2): two buddies become one region.
    Merge,
    /// Region split (§3.2): pure metadata, one region becomes two.
    Split,
    /// Wear-triggered data exchange between regions.
    Exchange,
}

/// A journaled operation: its kind and the full set of region updates it
/// will apply. Data movement is recomputed at replay from the updates
/// themselves, so the record is self-contained.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpRecord {
    /// The operation class (for reporting; recovery treats all alike).
    pub kind: OpKind,
    /// Every region descriptor this operation writes, in apply order.
    pub updates: Vec<RegionUpdate>,
}

/// The journal: at most one in-flight operation (the engines are
/// synchronous — an operation either commits before the next one starts or
/// the machine lost power inside it).
#[derive(Debug, Clone, Default)]
pub struct Journal {
    pending: Option<OpRecord>,
    begins: u64,
    commits: u64,
    replays: u64,
    rollbacks: u64,
}

impl Journal {
    /// Fresh, empty journal.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record an operation's intent before its first NVM write. Panics if
    /// an operation is already in flight (the engines commit before
    /// starting the next operation).
    pub fn begin(&mut self, kind: OpKind, updates: Vec<RegionUpdate>) {
        assert!(self.pending.is_none(), "journal already holds an in-flight operation");
        self.pending = Some(OpRecord { kind, updates });
        self.begins += 1;
    }

    /// Mark the in-flight operation complete; its record is discarded.
    pub fn commit(&mut self) {
        assert!(self.pending.is_some(), "commit without a pending operation");
        self.pending = None;
        self.commits += 1;
    }

    /// The in-flight operation, if the last run ended inside one.
    pub fn pending(&self) -> Option<&OpRecord> {
        self.pending.as_ref()
    }

    /// Whether an operation is in flight.
    pub fn has_pending(&self) -> bool {
        self.pending.is_some()
    }

    /// Recovery chose to roll the pending operation forward; the record
    /// stays pending until [`Journal::commit`] (replay itself can be
    /// interrupted by another power loss, after which recovery simply
    /// replays again).
    pub fn note_replay(&mut self) {
        self.replays += 1;
    }

    /// Recovery chose to roll the pending operation back: nothing of it
    /// landed, so the record is dropped.
    pub fn rollback(&mut self) {
        assert!(self.pending.is_some(), "rollback without a pending operation");
        self.pending = None;
        self.rollbacks += 1;
    }

    /// Operations opened (`begin`) since construction.
    pub fn begins(&self) -> u64 {
        self.begins
    }

    /// Operations committed since construction.
    pub fn commits(&self) -> u64 {
        self.commits
    }

    /// Replay passes performed by recovery.
    pub fn replays(&self) -> u64 {
        self.replays
    }

    /// Rollbacks performed by recovery.
    pub fn rollbacks(&self) -> u64 {
        self.rollbacks
    }

    /// Checkpoint the journal: the in-flight record (if any) and the
    /// lifetime counters. The journal models capacitor-backed SRAM, so it
    /// must survive a checkpoint/resume cycle exactly like a power cycle.
    pub fn ckpt_save(&self, w: &mut sawl_ckpt::Writer) {
        match &self.pending {
            None => w.put_bool(false),
            Some(rec) => {
                w.put_bool(true);
                w.put_u8(match rec.kind {
                    OpKind::Merge => 0,
                    OpKind::Split => 1,
                    OpKind::Exchange => 2,
                });
                w.put_u64(rec.updates.len() as u64);
                for u in &rec.updates {
                    w.put_u64(u.base);
                    w.put_u64(u.prn);
                    w.put_u64(u.key);
                    w.put_u8(u.q_log2);
                }
            }
        }
        w.put_u64(self.begins);
        w.put_u64(self.commits);
        w.put_u64(self.replays);
        w.put_u64(self.rollbacks);
    }

    /// Restore a journal saved by [`ckpt_save`](Self::ckpt_save).
    pub fn ckpt_restore(
        &mut self,
        r: &mut sawl_ckpt::Reader<'_>,
    ) -> Result<(), sawl_ckpt::CkptError> {
        let pending = if r.get_bool()? {
            let kind = match r.get_u8()? {
                0 => OpKind::Merge,
                1 => OpKind::Split,
                2 => OpKind::Exchange,
                k => {
                    return Err(sawl_ckpt::CkptError::Corrupt(format!(
                        "journal: unknown operation kind {k}"
                    )))
                }
            };
            let count = r.get_u64()?;
            // An operation touches at most a handful of regions; a huge
            // count is corruption, not a real record.
            if count > 1024 {
                return Err(sawl_ckpt::CkptError::Corrupt(format!(
                    "journal: implausible update count {count}"
                )));
            }
            let mut updates = Vec::with_capacity(count as usize);
            for _ in 0..count {
                let base = r.get_u64()?;
                let prn = r.get_u64()?;
                let key = r.get_u64()?;
                let q_log2 = r.get_u8()?;
                updates.push(RegionUpdate { base, prn, key, q_log2 });
            }
            Some(OpRecord { kind, updates })
        } else {
            None
        };
        self.pending = pending;
        self.begins = r.get_u64()?;
        self.commits = r.get_u64()?;
        self.replays = r.get_u64()?;
        self.rollbacks = r.get_u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn upd(base: u64) -> RegionUpdate {
        RegionUpdate { base, prn: base / 4, key: 3, q_log2: 2 }
    }

    #[test]
    fn begin_commit_cycle() {
        let mut j = Journal::new();
        assert!(!j.has_pending());
        j.begin(OpKind::Merge, vec![upd(0), upd(4)]);
        assert!(j.has_pending());
        assert_eq!(j.pending().unwrap().kind, OpKind::Merge);
        assert_eq!(j.pending().unwrap().updates.len(), 2);
        j.commit();
        assert!(!j.has_pending());
        assert_eq!(j.begins(), 1);
        assert_eq!(j.commits(), 1);
    }

    #[test]
    fn replay_keeps_the_record_until_commit() {
        let mut j = Journal::new();
        j.begin(OpKind::Exchange, vec![upd(8)]);
        j.note_replay();
        assert!(j.has_pending(), "replay must not consume the record");
        j.note_replay(); // a second crash during replay
        j.commit();
        assert_eq!(j.replays(), 2);
        assert_eq!(j.commits(), 1);
    }

    #[test]
    fn rollback_discards_the_record() {
        let mut j = Journal::new();
        j.begin(OpKind::Split, vec![upd(0)]);
        j.rollback();
        assert!(!j.has_pending());
        assert_eq!(j.rollbacks(), 1);
        assert_eq!(j.commits(), 0);
    }

    #[test]
    #[should_panic(expected = "in-flight")]
    fn double_begin_panics() {
        let mut j = Journal::new();
        j.begin(OpKind::Merge, vec![]);
        j.begin(OpKind::Split, vec![]);
    }

    #[test]
    #[should_panic(expected = "without a pending")]
    fn commit_without_begin_panics() {
        Journal::new().commit();
    }
}
