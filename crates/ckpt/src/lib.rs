//! # sawl-ckpt — checkpoint container and field codec
//!
//! The checkpoint/resume machinery (ROADMAP item 2, DESIGN.md §15) needs a
//! wire format with three properties the rest of the workspace can build
//! on blindly:
//!
//! 1. **Versioned and checksummed**: a file that is truncated, corrupted,
//!    or written by a different format revision is rejected with a typed
//!    [`CkptError`] — never a panic, never a silent partial load.
//! 2. **Atomic on disk**: [`write_file`] stages the image under a
//!    temporary name, fsyncs it, then renames it over the target and
//!    fsyncs the directory, so a crash mid-checkpoint leaves either the
//!    previous complete checkpoint or the new complete checkpoint.
//! 3. **Deterministic**: the same logical state always encodes to the
//!    same bytes (fixed-width little-endian fields, no map iteration
//!    order, no timestamps), so "resume ≡ uninterrupted" can be asserted
//!    byte-for-byte.
//!
//! The codec itself is deliberately primitive: a [`Writer`] appends
//! fixed-width little-endian fields and length-prefixed blobs to a byte
//! buffer; a [`Reader`] consumes them in the same order, returning
//! [`CkptError::Truncated`] instead of slicing out of bounds. Every state
//! owner (device, scheme, recorder, stream cursor) writes its fields in a
//! fixed documented order; the container does not know or care what the
//! payload means. Layout changes bump [`VERSION`].
//!
//! This crate is dependency-free so every layer of the workspace —
//! including `sawl-nvm` at the bottom — can implement save/restore
//! without a dependency cycle.

use std::fmt;
use std::fs;
use std::io::Write as _;
use std::path::Path;

/// File magic: identifies a SAWL checkpoint regardless of version.
pub const MAGIC: [u8; 8] = *b"SAWLCKPT";

/// Container format version. Bumped whenever any state owner changes its
/// field layout; old files are then rejected with
/// [`CkptError::BadVersion`] rather than misdecoded.
pub const VERSION: u32 = 1;

/// Frame overhead: magic + version + payload length + trailing checksum.
const HEADER_LEN: usize = 8 + 4 + 8;
const TRAILER_LEN: usize = 8;

/// Typed checkpoint failure. Every decode path returns one of these;
/// nothing in this crate panics on malformed input.
#[derive(Debug)]
pub enum CkptError {
    /// Underlying filesystem error (open/read/write/fsync/rename).
    Io(std::io::Error),
    /// The file (or a field inside the payload) ends before the bytes it
    /// promises; `needed`/`available` describe the failing read.
    Truncated { needed: usize, available: usize },
    /// The first eight bytes are not [`MAGIC`] — not a checkpoint file.
    BadMagic,
    /// A checkpoint from a different format revision.
    BadVersion { found: u32, expected: u32 },
    /// The payload does not match its recorded checksum: bit rot or a
    /// torn write that survived the atomicity protocol (e.g. copied off
    /// a crashed disk).
    BadChecksum { expected: u64, found: u64 },
    /// The payload decoded structurally but describes an impossible
    /// state (length mismatch against the live configuration, unknown
    /// enum tag, cursor past the end, ...).
    Corrupt(String),
}

impl fmt::Display for CkptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CkptError::Io(e) => write!(f, "checkpoint i/o error: {e}"),
            CkptError::Truncated { needed, available } => {
                write!(f, "checkpoint truncated: needed {needed} bytes, had {available}")
            }
            CkptError::BadMagic => write!(f, "not a checkpoint file (bad magic)"),
            CkptError::BadVersion { found, expected } => {
                write!(f, "checkpoint version {found} unsupported (expected {expected})")
            }
            CkptError::BadChecksum { expected, found } => write!(
                f,
                "checkpoint checksum mismatch (recorded {expected:#018x}, computed {found:#018x})"
            ),
            CkptError::Corrupt(why) => write!(f, "checkpoint corrupt: {why}"),
        }
    }
}

impl std::error::Error for CkptError {}

impl From<std::io::Error> for CkptError {
    fn from(e: std::io::Error) -> Self {
        CkptError::Io(e)
    }
}

/// FNV-1a over the framed bytes. Not cryptographic — it guards against
/// truncation and bit rot, not adversaries (the checkpoint directory is
/// trusted local state).
pub fn checksum(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Append-only field encoder. All integers are little-endian fixed
/// width; blobs and slices are length-prefixed with a `u64` count.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    pub fn new() -> Self {
        Self { buf: Vec::new() }
    }

    pub fn with_capacity(cap: usize) -> Self {
        Self { buf: Vec::with_capacity(cap) }
    }

    /// Bytes encoded so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consume the writer, yielding the raw payload for [`write_file`].
    pub fn into_payload(self) -> Vec<u8> {
        self.buf
    }

    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub fn put_bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }

    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// IEEE-754 bits, so NaN payloads round-trip bit-exactly.
    pub fn put_f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    /// Optional u64: presence flag then the value.
    pub fn put_opt_u64(&mut self, v: Option<u64>) {
        match v {
            Some(x) => {
                self.put_bool(true);
                self.put_u64(x);
            }
            None => self.put_bool(false),
        }
    }

    /// Length-prefixed raw bytes.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.put_u64(v.len() as u64);
        self.buf.extend_from_slice(v);
    }

    /// Length-prefixed UTF-8 string (used for embedded JSON blobs).
    pub fn put_str(&mut self, v: &str) {
        self.put_bytes(v.as_bytes());
    }

    pub fn put_u16_slice(&mut self, v: &[u16]) {
        self.put_u64(v.len() as u64);
        for &x in v {
            self.buf.extend_from_slice(&x.to_le_bytes());
        }
    }

    pub fn put_u32_slice(&mut self, v: &[u32]) {
        self.put_u64(v.len() as u64);
        for &x in v {
            self.buf.extend_from_slice(&x.to_le_bytes());
        }
    }

    pub fn put_u64_slice(&mut self, v: &[u64]) {
        self.put_u64(v.len() as u64);
        for &x in v {
            self.buf.extend_from_slice(&x.to_le_bytes());
        }
    }

    /// A captured xoshiro256++ state ([`rand::SmallRng`-shaped]).
    pub fn put_rng(&mut self, s: [u64; 4]) {
        for x in s {
            self.put_u64(x);
        }
    }
}

/// Cursor over a checkpoint payload; every read is bounds-checked and
/// returns [`CkptError::Truncated`] past the end.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Assert the payload was consumed exactly; trailing garbage means
    /// the reader and writer disagree about the layout.
    pub fn finish(self) -> Result<(), CkptError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(CkptError::Corrupt(format!(
                "{} unconsumed payload bytes",
                self.buf.len() - self.pos
            )))
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CkptError> {
        if self.remaining() < n {
            return Err(CkptError::Truncated { needed: n, available: self.remaining() });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub fn get_u8(&mut self) -> Result<u8, CkptError> {
        Ok(self.take(1)?[0])
    }

    pub fn get_bool(&mut self) -> Result<bool, CkptError> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(CkptError::Corrupt(format!("bool field holds {b}"))),
        }
    }

    pub fn get_u32(&mut self) -> Result<u32, CkptError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    pub fn get_u64(&mut self) -> Result<u64, CkptError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub fn get_i64(&mut self) -> Result<i64, CkptError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub fn get_f64(&mut self) -> Result<f64, CkptError> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    pub fn get_opt_u64(&mut self) -> Result<Option<u64>, CkptError> {
        if self.get_bool()? {
            Ok(Some(self.get_u64()?))
        } else {
            Ok(None)
        }
    }

    /// A length prefix that must also fit in the remaining payload —
    /// rejects absurd lengths before any allocation.
    fn get_len(&mut self, elem_bytes: usize) -> Result<usize, CkptError> {
        let n = self.get_u64()?;
        let need = (n as usize)
            .checked_mul(elem_bytes)
            .ok_or_else(|| CkptError::Corrupt(format!("length prefix {n} overflows")))?;
        if need > self.remaining() {
            return Err(CkptError::Truncated { needed: need, available: self.remaining() });
        }
        Ok(n as usize)
    }

    pub fn get_bytes(&mut self) -> Result<Vec<u8>, CkptError> {
        let n = self.get_len(1)?;
        Ok(self.take(n)?.to_vec())
    }

    pub fn get_str(&mut self) -> Result<String, CkptError> {
        let b = self.get_bytes()?;
        String::from_utf8(b).map_err(|_| CkptError::Corrupt("non-UTF-8 string field".into()))
    }

    pub fn get_u16_vec(&mut self) -> Result<Vec<u16>, CkptError> {
        let n = self.get_len(2)?;
        let raw = self.take(n * 2)?;
        Ok(raw.chunks_exact(2).map(|c| u16::from_le_bytes(c.try_into().unwrap())).collect())
    }

    pub fn get_u32_vec(&mut self) -> Result<Vec<u32>, CkptError> {
        let n = self.get_len(4)?;
        let raw = self.take(n * 4)?;
        Ok(raw.chunks_exact(4).map(|c| u32::from_le_bytes(c.try_into().unwrap())).collect())
    }

    pub fn get_u64_vec(&mut self) -> Result<Vec<u64>, CkptError> {
        let n = self.get_len(8)?;
        let raw = self.take(n * 8)?;
        Ok(raw.chunks_exact(8).map(|c| u64::from_le_bytes(c.try_into().unwrap())).collect())
    }

    pub fn get_rng(&mut self) -> Result<[u64; 4], CkptError> {
        Ok([self.get_u64()?, self.get_u64()?, self.get_u64()?, self.get_u64()?])
    }
}

/// Frame a payload: `MAGIC | version | payload_len | payload | checksum`,
/// where the checksum covers version + length + payload.
pub fn frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len() + TRAILER_LEN);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(payload);
    let sum = checksum(&out[8..]);
    out.extend_from_slice(&sum.to_le_bytes());
    out
}

/// Strip and verify the frame, yielding the payload slice.
pub fn unframe(bytes: &[u8]) -> Result<&[u8], CkptError> {
    if bytes.len() < 8 {
        return Err(CkptError::Truncated { needed: 8, available: bytes.len() });
    }
    if bytes[..8] != MAGIC {
        return Err(CkptError::BadMagic);
    }
    if bytes.len() < HEADER_LEN {
        return Err(CkptError::Truncated { needed: HEADER_LEN, available: bytes.len() });
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
    if version != VERSION {
        return Err(CkptError::BadVersion { found: version, expected: VERSION });
    }
    let plen = u64::from_le_bytes(bytes[12..20].try_into().unwrap()) as usize;
    let total = HEADER_LEN
        .checked_add(plen)
        .and_then(|n| n.checked_add(TRAILER_LEN))
        .ok_or_else(|| CkptError::Corrupt(format!("payload length {plen} overflows")))?;
    if bytes.len() < total {
        return Err(CkptError::Truncated { needed: total, available: bytes.len() });
    }
    if bytes.len() > total {
        return Err(CkptError::Corrupt(format!(
            "{} trailing bytes after frame",
            bytes.len() - total
        )));
    }
    let recorded = u64::from_le_bytes(bytes[total - TRAILER_LEN..total].try_into().unwrap());
    let computed = checksum(&bytes[8..total - TRAILER_LEN]);
    if recorded != computed {
        return Err(CkptError::BadChecksum { expected: recorded, found: computed });
    }
    Ok(&bytes[HEADER_LEN..HEADER_LEN + plen])
}

/// Write a framed checkpoint atomically: stage under `<path>.tmp`, fsync
/// the staged file, rename over `path`, then fsync the parent directory
/// so the rename itself is durable. A crash at any point leaves `path`
/// either absent, the previous complete image, or the new complete
/// image — never a torn mixture.
pub fn write_file(path: &Path, payload: &[u8]) -> Result<(), CkptError> {
    let framed = frame(payload);
    let tmp = tmp_path(path);
    {
        let mut f = fs::File::create(&tmp)?;
        f.write_all(&framed)?;
        f.sync_all()?;
    }
    if let Err(e) = fs::rename(&tmp, path) {
        let _ = fs::remove_file(&tmp);
        return Err(e.into());
    }
    if let Some(dir) = path.parent() {
        // Directory fsync makes the rename durable; some filesystems
        // refuse to open a directory for writing, so failure to sync is
        // not failure to checkpoint.
        if let Ok(d) = fs::File::open(if dir.as_os_str().is_empty() { Path::new(".") } else { dir })
        {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

fn tmp_path(path: &Path) -> std::path::PathBuf {
    let mut os = path.as_os_str().to_os_string();
    os.push(".tmp");
    std::path::PathBuf::from(os)
}

/// Read and verify a checkpoint file, returning its payload.
pub fn read_file(path: &Path) -> Result<Vec<u8>, CkptError> {
    let bytes = fs::read(path)?;
    Ok(unframe(&bytes)?.to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_field_kinds() {
        let mut w = Writer::new();
        w.put_u8(7);
        w.put_bool(true);
        w.put_bool(false);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX);
        w.put_i64(-42);
        w.put_f64(1.5);
        w.put_f64(f64::NAN);
        w.put_opt_u64(Some(9));
        w.put_opt_u64(None);
        w.put_bytes(b"blob");
        w.put_str("json{}");
        w.put_u16_slice(&[1, 2, 65535]);
        w.put_u32_slice(&[3, 4]);
        w.put_u64_slice(&[5]);
        w.put_rng([11, 12, 13, 14]);
        let payload = w.into_payload();

        let mut r = Reader::new(&payload);
        assert_eq!(r.get_u8().unwrap(), 7);
        assert!(r.get_bool().unwrap());
        assert!(!r.get_bool().unwrap());
        assert_eq!(r.get_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64().unwrap(), u64::MAX);
        assert_eq!(r.get_i64().unwrap(), -42);
        assert_eq!(r.get_f64().unwrap(), 1.5);
        assert!(r.get_f64().unwrap().is_nan());
        assert_eq!(r.get_opt_u64().unwrap(), Some(9));
        assert_eq!(r.get_opt_u64().unwrap(), None);
        assert_eq!(r.get_bytes().unwrap(), b"blob");
        assert_eq!(r.get_str().unwrap(), "json{}");
        assert_eq!(r.get_u16_vec().unwrap(), vec![1, 2, 65535]);
        assert_eq!(r.get_u32_vec().unwrap(), vec![3, 4]);
        assert_eq!(r.get_u64_vec().unwrap(), vec![5]);
        assert_eq!(r.get_rng().unwrap(), [11, 12, 13, 14]);
        r.finish().unwrap();
    }

    #[test]
    fn reader_rejects_overrun_not_panics() {
        let mut r = Reader::new(&[1, 2, 3]);
        assert!(matches!(r.get_u64(), Err(CkptError::Truncated { .. })));
    }

    #[test]
    fn reader_rejects_absurd_length_prefix() {
        let mut w = Writer::new();
        w.put_u64(u64::MAX); // claims ~2^64 bytes follow
        let payload = w.into_payload();
        let mut r = Reader::new(&payload);
        assert!(matches!(
            r.get_u64_vec(),
            Err(CkptError::Corrupt(_)) | Err(CkptError::Truncated { .. })
        ));
    }

    #[test]
    fn finish_flags_trailing_garbage() {
        let mut w = Writer::new();
        w.put_u64(1);
        w.put_u64(2);
        let payload = w.into_payload();
        let mut r = Reader::new(&payload);
        r.get_u64().unwrap();
        assert!(matches!(r.finish(), Err(CkptError::Corrupt(_))));
    }

    #[test]
    fn frame_roundtrip_and_determinism() {
        let framed = frame(b"hello");
        assert_eq!(unframe(&framed).unwrap(), b"hello");
        assert_eq!(framed, frame(b"hello"));
    }

    #[test]
    fn unframe_rejects_bad_magic() {
        let mut framed = frame(b"hello");
        framed[0] ^= 0xFF;
        assert!(matches!(unframe(&framed), Err(CkptError::BadMagic)));
    }

    #[test]
    fn unframe_rejects_wrong_version() {
        let mut framed = frame(b"hello");
        framed[8] = framed[8].wrapping_add(1);
        assert!(matches!(unframe(&framed), Err(CkptError::BadVersion { expected: VERSION, .. })));
    }

    #[test]
    fn unframe_rejects_every_truncation_point() {
        let framed = frame(b"payload bytes");
        for cut in 0..framed.len() {
            let err = unframe(&framed[..cut]).unwrap_err();
            assert!(
                matches!(err, CkptError::Truncated { .. } | CkptError::BadMagic),
                "cut at {cut} gave {err}"
            );
        }
    }

    #[test]
    fn unframe_rejects_every_single_bitflip() {
        let framed = frame(b"sensitive state");
        for i in 8..framed.len() {
            let mut bad = framed.clone();
            bad[i] ^= 0x01;
            assert!(unframe(&bad).is_err(), "bitflip at byte {i} accepted");
        }
    }

    #[test]
    fn unframe_rejects_trailing_garbage() {
        let mut framed = frame(b"hello");
        framed.push(0);
        assert!(matches!(unframe(&framed), Err(CkptError::Corrupt(_))));
    }

    #[test]
    fn file_roundtrip_is_atomic_shaped() {
        let dir = std::env::temp_dir().join(format!("sawl-ckpt-test-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.ckpt");
        write_file(&path, b"first").unwrap();
        assert_eq!(read_file(&path).unwrap(), b"first");
        write_file(&path, b"second").unwrap();
        assert_eq!(read_file(&path).unwrap(), b"second");
        assert!(!tmp_path(&path).exists(), "staging file left behind");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn read_file_maps_missing_to_io() {
        let err = read_file(Path::new("/nonexistent/sawl.ckpt")).unwrap_err();
        assert!(matches!(err, CkptError::Io(_)));
    }
}
