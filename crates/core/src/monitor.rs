//! Hit-rate monitoring and granularity decisions (§3.2, §4.2).
//!
//! SAWL measures the runtime cache hit rate "by calculating the percentage
//! of memory access requests that hit the cache out of a certain total
//! number of requests observed" — the **observation window** (SOW). The
//! rate is sampled every 100 000 requests. Before acting on a low/high
//! rate, SAWL "waits for a certain number of requests to ensure that the
//! cache hit rate ... is sufficiently stable" — the **settling window**
//! (SSW). §4.2 trains both to 2^22 requests.
//!
//! The monitor is a pure state machine over `(hit, split-counter)` inputs,
//! independent of the engine, so its windowing logic is directly unit
//! tested and reusable by the NWL ablations.

use serde::{Deserialize, Serialize};

use crate::config::SawlConfig;

/// Granularity decision emitted by the monitor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Decision {
    /// Keep the current granularity.
    Hold,
    /// Merge cached regions (hit rate persistently low).
    Merge,
    /// Split cached regions (hit rate persistently high and hits
    /// concentrated per the §3.2 sub-queue rule).
    Split,
}

/// Per-sample inputs the engine feeds the monitor.
#[derive(Debug, Clone, Copy, Default)]
pub struct MonitorInputs {
    /// Hits in the first (MRU) half of the CMT since the last sample.
    pub hits_first_half: u64,
    /// Hits in the second half since the last sample.
    pub hits_second_half: u64,
    /// Misses since the last sample.
    pub misses: u64,
}

impl MonitorInputs {
    fn total(&self) -> u64 {
        self.hits_first_half + self.hits_second_half + self.misses
    }

    fn hits(&self) -> u64 {
        self.hits_first_half + self.hits_second_half
    }
}

/// One block of the observation-window ring buffer.
#[derive(Debug, Clone, Copy, Default)]
struct Block {
    hits: u64,
    total: u64,
    hits_first: u64,
    hits_second: u64,
}

/// Windowed hit-rate monitor with settling.
#[derive(Debug, Clone)]
pub struct HitRateMonitor {
    sample_interval: u64,
    /// Ring of per-sample blocks covering the observation window.
    ring: Vec<Block>,
    ring_pos: usize,
    filled: usize,
    /// Running sums over the ring.
    sum_hits: u64,
    sum_total: u64,
    sum_first: u64,
    sum_second: u64,
    merge_threshold: f64,
    split_threshold: f64,
    subqueue_split_threshold: f64,
    first_half_dominance: f64,
    /// Samples the condition must persist before acting.
    settle_samples: u64,
    below_streak: u64,
    above_streak: u64,
    /// Cool-down after an action, in samples.
    cooldown: u64,
}

impl HitRateMonitor {
    /// Build from a [`SawlConfig`].
    pub fn new(cfg: &SawlConfig) -> Self {
        let blocks = (cfg.observation_window / cfg.sample_interval).max(1) as usize;
        let settle_samples = (cfg.settling_window / cfg.sample_interval).max(1);
        Self {
            sample_interval: cfg.sample_interval,
            ring: vec![Block::default(); blocks],
            ring_pos: 0,
            filled: 0,
            sum_hits: 0,
            sum_total: 0,
            sum_first: 0,
            sum_second: 0,
            merge_threshold: cfg.merge_threshold,
            split_threshold: cfg.split_threshold,
            subqueue_split_threshold: cfg.subqueue_split_threshold,
            first_half_dominance: cfg.first_half_dominance,
            settle_samples,
            below_streak: 0,
            above_streak: 0,
            cooldown: 0,
        }
    }

    /// Requests per sample.
    pub fn sample_interval(&self) -> u64 {
        self.sample_interval
    }

    /// Hit rate over the observation window (`None` until the first sample).
    pub fn windowed_hit_rate(&self) -> Option<f64> {
        if self.sum_total == 0 {
            None
        } else {
            Some(self.sum_hits as f64 / self.sum_total as f64)
        }
    }

    /// Feed one sample block (covering `sample_interval` requests) and get
    /// the decision for this instant.
    pub fn on_sample(&mut self, inputs: MonitorInputs) -> Decision {
        // Rotate the ring: subtract the expiring block, add the new one.
        let slot = &mut self.ring[self.ring_pos];
        self.sum_hits -= slot.hits;
        self.sum_total -= slot.total;
        self.sum_first -= slot.hits_first;
        self.sum_second -= slot.hits_second;
        *slot = Block {
            hits: inputs.hits(),
            total: inputs.total(),
            hits_first: inputs.hits_first_half,
            hits_second: inputs.hits_second_half,
        };
        self.sum_hits += slot.hits;
        self.sum_total += slot.total;
        self.sum_first += slot.hits_first;
        self.sum_second += slot.hits_second;
        self.ring_pos = (self.ring_pos + 1) % self.ring.len();
        self.filled = (self.filled + 1).min(self.ring.len());

        if self.cooldown > 0 {
            self.cooldown -= 1;
            self.below_streak = 0;
            self.above_streak = 0;
            return Decision::Hold;
        }
        // Wait until the observation window is at least half full so the
        // windowed rate is meaningful.
        if self.filled < self.ring.len() / 2 + 1 || self.sum_total == 0 {
            return Decision::Hold;
        }
        let rate = self.sum_hits as f64 / self.sum_total as f64;

        if rate < self.merge_threshold {
            self.below_streak += 1;
            self.above_streak = 0;
            if self.below_streak >= self.settle_samples {
                self.action_taken();
                return Decision::Merge;
            }
        } else if rate > self.split_threshold && self.split_imbalance() {
            self.above_streak += 1;
            self.below_streak = 0;
            if self.above_streak >= self.settle_samples {
                self.action_taken();
                return Decision::Split;
            }
        } else {
            self.below_streak = 0;
            self.above_streak = 0;
        }
        Decision::Hold
    }

    /// §3.2's split criterion: "if the hit ratio of the first queue OR the
    /// hit ratio of the second queue >= 99%" — i.e. one half of the LRU
    /// stack alone serves ≥99% of all lookups — "the NVM system splits the
    /// region for endurance, thus avoiding the decrease of cache hit rate
    /// after region-split completes"; or the first half dominates the hits
    /// so thoroughly that the second half is dead weight. Both conditions
    /// guarantee the post-split halved coverage still holds the working
    /// set, which is what keeps SAWL from thrashing at the coverage
    /// boundary (a workload that *needs* the whole stack spreads its hits
    /// and never satisfies either).
    fn split_imbalance(&self) -> bool {
        let hits = self.sum_first + self.sum_second;
        if hits == 0 {
            return false;
        }
        let first_frac = self.sum_first as f64 / hits as f64;
        let first_ratio = self.sum_first as f64 / self.sum_total as f64;
        let second_ratio = self.sum_second as f64 / self.sum_total as f64;
        first_frac >= self.first_half_dominance
            || first_ratio >= self.subqueue_split_threshold
            || second_ratio >= self.subqueue_split_threshold
    }

    /// Cancel the post-action cooldown. The engine calls this when a
    /// decision turned out to be a no-op (e.g. a split requested while
    /// every cached region already sits at the minimum granularity), so a
    /// fruitless decision does not stall real adaptation for a settling
    /// window.
    pub fn cancel_cooldown(&mut self) {
        self.cooldown = 0;
    }

    fn action_taken(&mut self) {
        self.below_streak = 0;
        self.above_streak = 0;
        // After acting, hold for a settling window so the effect of the
        // adjustment is observed before the next one.
        self.cooldown = self.settle_samples;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(sow_samples: u64, ssw_samples: u64) -> SawlConfig {
        SawlConfig {
            sample_interval: 1000,
            observation_window: 1000 * sow_samples,
            settling_window: 1000 * ssw_samples,
            ..Default::default()
        }
    }

    fn sample(hit_rate: f64, first_frac: f64) -> MonitorInputs {
        let total = 1000u64;
        let hits = (total as f64 * hit_rate) as u64;
        let first = (hits as f64 * first_frac) as u64;
        MonitorInputs {
            hits_first_half: first,
            hits_second_half: hits - first,
            misses: total - hits,
        }
    }

    #[test]
    fn holds_until_window_fills() {
        let mut m = HitRateMonitor::new(&cfg(8, 1));
        for _ in 0..4 {
            assert_eq!(m.on_sample(sample(0.2, 0.5)), Decision::Hold);
        }
    }

    #[test]
    fn merges_after_settling_on_low_rate() {
        let mut m = HitRateMonitor::new(&cfg(4, 3));
        let mut decisions = Vec::new();
        for _ in 0..8 {
            decisions.push(m.on_sample(sample(0.5, 0.5)));
        }
        assert!(decisions.contains(&Decision::Merge));
        // Exactly one merge within the cooldown horizon.
        assert_eq!(decisions.iter().filter(|&&d| d == Decision::Merge).count(), 1);
    }

    #[test]
    fn splits_on_high_rate_with_first_half_dominance() {
        let mut m = HitRateMonitor::new(&cfg(4, 2));
        let mut got_split = false;
        for _ in 0..10 {
            if m.on_sample(sample(0.97, 0.95)) == Decision::Split {
                got_split = true;
            }
        }
        assert!(got_split);
    }

    #[test]
    fn high_rate_without_imbalance_holds() {
        let mut m = HitRateMonitor::new(&cfg(4, 2));
        for _ in 0..20 {
            // 96% hit rate but hits spread evenly across the stack: the
            // current granularity is "satisfactory" (§3.2).
            assert_eq!(m.on_sample(sample(0.96, 0.55)), Decision::Hold);
        }
    }

    #[test]
    fn subqueue_or_rule_splits_when_one_half_serves_everything() {
        // First sub-queue alone serving >= 99% of lookups fires the
        // endurance split.
        let mut m = HitRateMonitor::new(&cfg(4, 2));
        let mut got_split = false;
        for _ in 0..10 {
            if m.on_sample(sample(0.998, 0.999)) == Decision::Split {
                got_split = true;
            }
        }
        assert!(got_split);
    }

    #[test]
    fn high_but_spread_hit_rate_never_splits() {
        // 99.5% hit rate with hits spread across both halves: the working
        // set needs the whole stack, splitting would thrash — hold.
        let mut m = HitRateMonitor::new(&cfg(4, 2));
        for _ in 0..30 {
            assert_eq!(m.on_sample(sample(0.995, 0.6)), Decision::Hold);
        }
    }

    #[test]
    fn mid_band_rate_never_acts() {
        let mut m = HitRateMonitor::new(&cfg(4, 1));
        for _ in 0..50 {
            assert_eq!(m.on_sample(sample(0.92, 0.9)), Decision::Hold);
        }
    }

    #[test]
    fn settling_requires_consecutive_samples() {
        // One-sample observation window: the windowed rate equals the
        // instant rate, so alternating low / mid-band samples keep
        // resetting the settling streak and nothing ever fires.
        let mut m = HitRateMonitor::new(&cfg(1, 3));
        for i in 0..30 {
            let s = if i % 2 == 0 { sample(0.5, 0.5) } else { sample(0.92, 0.5) };
            assert_eq!(m.on_sample(s), Decision::Hold, "sample {i}");
        }
    }

    #[test]
    fn cooldown_spaces_out_actions() {
        let mut m = HitRateMonitor::new(&cfg(2, 2));
        let mut merges = 0;
        let mut gap_since_last = 0;
        let mut min_gap = u64::MAX;
        for _ in 0..40 {
            gap_since_last += 1;
            if m.on_sample(sample(0.3, 0.5)) == Decision::Merge {
                merges += 1;
                if merges > 1 {
                    min_gap = min_gap.min(gap_since_last);
                }
                gap_since_last = 0;
            }
        }
        assert!(merges >= 2, "merges {merges}");
        // settle (2) + cooldown (2) apart at minimum.
        assert!(min_gap >= 4, "actions too close: {min_gap}");
    }

    #[test]
    fn windowed_rate_tracks_recent_blocks_only() {
        let mut m = HitRateMonitor::new(&cfg(4, 100));
        for _ in 0..4 {
            m.on_sample(sample(0.2, 0.5));
        }
        assert!((m.windowed_hit_rate().unwrap() - 0.2).abs() < 0.01);
        for _ in 0..4 {
            m.on_sample(sample(1.0, 0.5));
        }
        // Old low blocks rotated out entirely.
        assert!(m.windowed_hit_rate().unwrap() > 0.99);
    }
}
