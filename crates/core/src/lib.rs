//! # sawl-core — Self-Adaptive Wear Leveling
//!
//! The paper's contribution (§3): a tiered wear-leveling architecture whose
//! wear-leveling granularity *adapts at runtime*. The full mapping table
//! (IMT) lives in NVM; an on-chip CMT caches hot entries; and the engine
//! watches the CMT hit rate through an observation window:
//!
//! * hit rate persistently **below** the low threshold (90%) → the cached
//!   regions are **merged** pairwise with their buddies, so each CMT entry
//!   covers twice the address space and the hit rate recovers;
//! * hit rate persistently **above** the high threshold (95%) *and* hits
//!   concentrated in the hot half of the LRU stack (or a sub-queue above
//!   99%) → the cached regions are **split**, restoring fine-grained wear
//!   leveling at no data-movement cost (the XOR mapping makes split a pure
//!   metadata update, §3.2).
//!
//! Data exchange between regions follows PCM-S (the paper adopts it in the
//! data-exchange module); exchanges, merges and splits all write their
//! mapping updates through the GTD so translation-line wear is modelled
//! too.
//!
//! The engine is a thin composition of three unit-tested subsystems, one
//! per module, each behind a narrow trait:
//!
//! * [`mapping`] — the translation state ([`TieredMapping`] behind
//!   [`MappingTier`]): IMT/CMT/GTD traversal, the owner inverse map, and
//!   translation-line wear (§3.1, Fig. 11).
//! * [`adapt`] — the adaptation controller ([`HitRateAdaptation`] behind
//!   [`AdaptationController`]): windowed hit-rate monitoring, LRU-stack
//!   sampling and lazy merge/split target decisions (§3.2, §4.2).
//! * [`exchange`] — the exchange policy ([`RegionExchange`] behind
//!   [`ExchangePolicy`]): region write counters, XOR-key rotation and
//!   displaced-region exchange, sharing the PCM-S counter machinery with
//!   `sawl_algos::exchange` (§2.1).
//!
//! [`engine`] composes them into the [`Sawl`] wear leveler; [`config`]
//! holds the tunables (incl. the §4.2-trained SOW/SSW) and [`history`] the
//! time series for Figs. 12–14.

pub mod adapt;
pub mod config;
pub mod engine;
pub mod exchange;
pub mod history;
pub mod mapping;

pub use adapt::{
    AdaptAction, AdaptationController, Decision, HitRateAdaptation, HitRateMonitor, MonitorInputs,
};
pub use config::{ConfigError, SawlConfig};
pub use engine::{Sawl, SawlStats};
pub use exchange::{ExchangePlan, ExchangePolicy, RegionExchange};
pub use history::{History, Sample};
pub use mapping::{MappingTier, TieredMapping};
