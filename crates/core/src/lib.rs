//! # sawl-core — Self-Adaptive Wear Leveling
//!
//! The paper's contribution (§3): a tiered wear-leveling architecture whose
//! wear-leveling granularity *adapts at runtime*. The full mapping table
//! (IMT) lives in NVM; an on-chip CMT caches hot entries; and the engine
//! watches the CMT hit rate through an observation window:
//!
//! * hit rate persistently **below** the low threshold (90%) → the cached
//!   regions are **merged** pairwise with their buddies, so each CMT entry
//!   covers twice the address space and the hit rate recovers;
//! * hit rate persistently **above** the high threshold (95%) *and* hits
//!   concentrated in the hot half of the LRU stack (or a sub-queue above
//!   99%) → the cached regions are **split**, restoring fine-grained wear
//!   leveling at no data-movement cost (the XOR mapping makes split a pure
//!   metadata update, §3.2).
//!
//! Data exchange between regions follows PCM-S (the paper adopts it in the
//! data-exchange module); exchanges, merges and splits all write their
//! mapping updates through the GTD so translation-line wear is modelled
//! too.
//!
//! Modules: [`config`] (tunables incl. the §4.2-trained SOW/SSW), [`monitor`]
//! (windowed hit-rate tracking and merge/split decisions), [`engine`] (the
//! wear leveler itself), [`history`] (time series for Figs. 12–14).

pub mod config;
pub mod engine;
pub mod history;
pub mod monitor;

pub use config::SawlConfig;
pub use engine::{Sawl, SawlStats};
pub use history::{History, Sample};
pub use monitor::{Decision, HitRateMonitor, MonitorInputs};
