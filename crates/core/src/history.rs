//! Time-series recording for the paper's trajectory figures.
//!
//! Figs. 12–14 plot the cache hit rate and the region size as functions of
//! runtime (number of requests). The engine appends one [`Sample`] per
//! monitor sample; the figure binaries serialize the series to CSV.

use serde::{Deserialize, Serialize};

/// One sampled point of a run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Sample {
    /// Requests served so far.
    pub requests: u64,
    /// Hit rate over the observation window at this instant (0 before the
    /// window fills).
    pub windowed_hit_rate: f64,
    /// Hit rate within this sample interval alone.
    pub instant_hit_rate: f64,
    /// Mean region size (lines) over the currently cached entries.
    pub cached_region_size: f64,
    /// Mean region size (lines) over the whole memory.
    pub global_region_size: f64,
}

/// A recorded run.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct History {
    samples: Vec<Sample>,
}

impl History {
    /// Empty history.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a sample.
    pub fn push(&mut self, s: Sample) {
        self.samples.push(s);
    }

    /// All samples in order.
    pub fn samples(&self) -> &[Sample] {
        &self.samples
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Average instant hit rate over the run (the "Avg. cache hit rate"
    /// annotation of Figs. 13–14).
    pub fn average_hit_rate(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().map(|s| s.instant_hit_rate).sum::<f64>() / self.samples.len() as f64
    }

    /// Average cached region size over the run (§4.2: "the average region
    /// size of SAWL is about 16 memory lines").
    pub fn average_region_size(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().map(|s| s.cached_region_size).sum::<f64>() / self.samples.len() as f64
    }

    /// Distinct region sizes visited (how much adaptation happened).
    pub fn region_size_changes(&self) -> usize {
        let mut changes = 0;
        for w in self.samples.windows(2) {
            if (w[0].cached_region_size - w[1].cached_region_size).abs() > 0.5 {
                changes += 1;
            }
        }
        changes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(requests: u64, rate: f64, size: f64) -> Sample {
        Sample {
            requests,
            windowed_hit_rate: rate,
            instant_hit_rate: rate,
            cached_region_size: size,
            global_region_size: size,
        }
    }

    #[test]
    fn averages() {
        let mut h = History::new();
        h.push(s(100, 0.8, 4.0));
        h.push(s(200, 0.9, 8.0));
        assert!((h.average_hit_rate() - 0.85).abs() < 1e-12);
        assert!((h.average_region_size() - 6.0).abs() < 1e-12);
        assert_eq!(h.len(), 2);
    }

    #[test]
    fn counts_region_size_changes() {
        let mut h = History::new();
        for (r, size) in [(1u64, 4.0), (2, 4.0), (3, 8.0), (4, 8.0), (5, 16.0)] {
            h.push(s(r, 0.9, size));
        }
        assert_eq!(h.region_size_changes(), 2);
    }

    #[test]
    fn empty_history_is_benign() {
        let h = History::new();
        assert!(h.is_empty());
        assert_eq!(h.average_hit_rate(), 0.0);
        assert_eq!(h.region_size_changes(), 0);
    }
}
