//! The mapping tier: CMT/GTD/IMT traversal and translation-line writes.
//!
//! This subsystem owns every piece of SAWL's *address translation* state
//! (§3.1, Fig. 11): the in-NVM IMT image, the on-chip CMT that caches hot
//! entries, the GTD that levels translation-line wear, and the inverse
//! `owner` map (physical granule → logical granule) that relocation
//! operations need to find a block's current occupants. Hardware derives
//! the owner information from the IMT it is about to rewrite; we keep it
//! materialized.
//!
//! The logical space is divided into *granules* of `P` lines (the minimum
//! granularity). A region of the current granularity `Q = 2^k · P` is a
//! naturally aligned run of `Q/P` granules whose IMT entries are identical
//! — the paper's Fig. 10 encoding ("to indicate the sub-regions belonging
//! to a large region, their address information is identical").
//!
//! One simulation shortcut, documented here once: [`TieredMapping::resolve_cached`]
//! reads the *authoritative* granularity from the in-memory IMT image to
//! form the CMT probe key, where hardware would use a range-matching
//! (TCAM-style) lookup over the cached entries. The observable behaviour —
//! which entry hits, what gets evicted, every counter — is identical,
//! because the CMT is kept coherent on every granularity change.
//!
//! What this module does **not** know about: when to merge/split/exchange
//! (the [adaptation controller](crate::adapt) and [exchange
//! policy](crate::exchange) decide), or data-line write charging policy per
//! operation (callers charge via [`TieredMapping::charge_block`] because
//! the data-movement cost depends on the operation — split moves nothing).

use sawl_nvm::{La, NvmDevice, Pa};
use sawl_tiered::cmt::{Cmt, CmtLookup};
use sawl_tiered::gtd::Gtd;
use sawl_tiered::imt::{ImtEntry, ImtTable};
use sawl_tiered::journal::RegionUpdate;
use sawl_tiered::layout::TieredLayout;

use crate::config::SawlConfig;

/// Narrow interface of the translation subsystem: everything the engine's
/// request path needs from the mapping state.
pub trait MappingTier {
    /// Authoritative IMT entry covering `granule`.
    fn entry(&self, granule: u64) -> ImtEntry;

    /// Current physical location of logical line `la`; no side effects.
    fn translate(&self, la: La) -> Pa;

    /// Resolve the entry covering `granule` through the CMT, charging an
    /// in-NVM IMT read on a miss (Fig. 11 steps 1–3).
    fn resolve_cached(&mut self, granule: u64, dev: &mut NvmDevice) -> ImtEntry;

    /// Rewrite the region at `base` to placement `(prn, key, q_log2)`:
    /// IMT entries, owner map and CMT image, charging the translation-line
    /// writes through the GTD.
    fn set_region(&mut self, base: u64, prn: u64, key: u64, q_log2: u8, dev: &mut NvmDevice);
}

/// The concrete tiered mapping state: IMT in NVM, CMT on chip, GTD for
/// translation-line wear, plus the inverse owner map.
#[derive(Debug, Clone)]
pub struct TieredMapping {
    layout: TieredLayout,
    p_log2: u32,
    /// Total granules (data_lines / P).
    granules: u64,
    imt: ImtTable,
    /// physical granule -> logical granule.
    owner: Vec<u32>,
    cmt: Cmt<ImtEntry>,
    gtd: Gtd,
}

impl TieredMapping {
    /// Identity mapping over `cfg`'s geometry; `gtd_seed` randomizes the
    /// GTD's refresh starting point.
    pub fn new(cfg: &SawlConfig, gtd_seed: u64) -> Self {
        let p = cfg.initial_granularity;
        let layout = TieredLayout::new(cfg.data_lines, p);
        let granules = cfg.data_lines / p;
        let gtd =
            Gtd::new(layout.translation_base(), layout.translation_space, cfg.gtd_period, gtd_seed);
        Self {
            p_log2: p.trailing_zeros(),
            granules,
            imt: ImtTable::identity(cfg.data_lines, p),
            owner: (0..granules as u32).collect(),
            cmt: Cmt::new(cfg.cmt_entries),
            gtd,
            layout,
        }
    }

    /// The physical layout.
    pub fn layout(&self) -> TieredLayout {
        self.layout
    }

    /// Physical lines the device must provide (data + translation region).
    pub fn required_physical_lines(&self) -> u64 {
        self.layout.total_lines()
    }

    /// Total granules.
    pub fn granules(&self) -> u64 {
        self.granules
    }

    /// log2 of the minimum granularity P.
    pub fn p_log2(&self) -> u32 {
        self.p_log2
    }

    /// The CMT (hit counters, occupancy) for the monitor and tests.
    /// Record `k` repeated CMT hits to the cached region at `base` — the
    /// bulk half of run-length batching, equivalent to `k` cache lookups.
    pub fn record_repeat_hits(&mut self, base: u64, k: u64) {
        self.cmt.record_hits(base, k);
    }

    pub fn cmt(&self) -> &Cmt<ImtEntry> {
        &self.cmt
    }

    /// Granules per region for an entry.
    #[inline]
    pub fn nq(&self, e: ImtEntry) -> u64 {
        1 << (u32::from(e.q_log2) - self.p_log2)
    }

    /// Base granule of the region covering granule `g` under entry `e`.
    #[inline]
    pub fn base_of(&self, g: u64, e: ImtEntry) -> u64 {
        g & !(self.nq(e) - 1)
    }

    /// Granularity (log2 lines) of the region currently occupying physical
    /// granule `phys`. Relocation target selection uses this to skip
    /// blocks owned by larger regions.
    pub fn occupant_q_log2(&self, phys: u64) -> u8 {
        let o = u64::from(self.owner[phys as usize]);
        self.imt.entry(o).q_log2
    }

    /// Drop the cached entry for `base`, if any.
    pub fn cache_remove(&mut self, base: u64) {
        self.cmt.remove(base);
    }

    /// Insert the current authoritative entry for `base` into the CMT.
    pub fn cache_insert_current(&mut self, base: u64) {
        self.cmt.insert(base, self.imt.entry(base));
    }

    /// Charge `count` granules' worth of data-line writes starting at
    /// physical granule `start`.
    pub fn charge_block(&self, start: u64, count: u64, dev: &mut NvmDevice) {
        let p = 1u64 << self.p_log2;
        dev.write_wl_range(start * p, count * p);
    }

    /// Compute the region updates that relocate every region currently
    /// occupying the `count` physical granules starting at `from` into the
    /// equal-size block starting at `to`, preserving each region's offset
    /// within the block. Pure planning — nothing is applied — so the
    /// engine can journal the updates before the first NVM write.
    pub fn plan_displacement(&self, from: u64, count: u64, to: u64) -> Vec<RegionUpdate> {
        let mut updates = Vec::new();
        let mut g = from;
        while g < from + count {
            let o = u64::from(self.owner[g as usize]);
            let e = self.imt.entry(o);
            let dshift = u32::from(e.q_log2) - self.p_log2;
            let dphys = e.prn() << dshift;
            let new_prn = (to + (dphys - from)) >> dshift;
            updates.push(RegionUpdate {
                base: self.base_of(o, e),
                prn: new_prn,
                key: e.key(),
                q_log2: e.q_log2,
            });
            g += self.nq(e);
        }
        updates
    }

    /// Apply one journaled region update (idempotent: re-applying after a
    /// partial first attempt converges to the same state).
    pub fn apply_update(&mut self, u: &RegionUpdate, dev: &mut NvmDevice) {
        self.set_region(u.base, u.prn, u.key, u.q_log2, dev);
    }

    /// Whether any granule of `u`'s region already carries the update's
    /// target entry — the recovery layer's redo-vs-rollback test. (A
    /// no-op update reports `true` against the pre-update state too; both
    /// answers are safe there because applying is idempotent.)
    pub fn update_landed(&self, u: &RegionUpdate) -> bool {
        let e = ImtEntry::pack(u.prn, u.key, u.q_log2);
        let nq = 1u64 << (u32::from(u.q_log2) - self.p_log2);
        (0..nq).any(|j| self.imt.entry(u.base + j) == e)
    }

    /// Relocate every region currently occupying the `count` physical
    /// granules starting at `from` into the equal-size block starting at
    /// `to`, preserving each region's offset within the block. Rewrites
    /// mapping state only; callers charge the data movement.
    pub fn displace_block(&mut self, from: u64, count: u64, to: u64, dev: &mut NvmDevice) {
        let updates = self.plan_displacement(from, count, to);
        for u in &updates {
            self.apply_update(u, dev);
        }
    }

    /// Rebuild the volatile state after a crash, once the journal has been
    /// replayed or rolled back and the IMT is consistent again: recompute
    /// the owner inverse map from the IMT and restart the CMT cold (it is
    /// on-chip SRAM and did not survive the power loss). Returns the
    /// region count so the engine can restore its cached tally.
    pub fn rebuild_after_crash(&mut self) -> u64 {
        let mut g = 0;
        let mut region_count = 0u64;
        while g < self.granules {
            let e = self.imt.entry(g);
            let nq = self.nq(e);
            let key_g = e.key() >> self.p_log2;
            let phys_base = e.prn() << (u32::from(e.q_log2) - self.p_log2);
            for j in 0..nq {
                self.owner[(phys_base + (j ^ key_g)) as usize] = (g + j) as u32;
            }
            region_count += 1;
            g += nq;
        }
        self.cmt.clear();
        region_count
    }

    /// Checkpoint the mutable mapping state: the IMT image, the CMT (full
    /// LRU stack + counters, so a resumed run replays hits and misses
    /// byte-identically) and the GTD. The owner inverse map is derived
    /// state and is rebuilt on restore.
    pub fn ckpt_save(&self, w: &mut sawl_ckpt::Writer) {
        self.imt.ckpt_save(w);
        self.cmt.ckpt_save(w, |e, w| {
            w.put_u64(e.d);
            w.put_u8(e.q_log2);
        });
        self.gtd.ckpt_save(w);
    }

    /// Restore state saved by [`ckpt_save`](Self::ckpt_save) into a
    /// mapping built from the same spec. Unlike post-crash recovery the
    /// CMT contents survive (checkpoint/resume must continue the exact
    /// request stream). Validates that the restored IMT describes aligned,
    /// in-bounds regions and that every cached entry matches it. Returns
    /// the region count observed while rebuilding the owner map.
    pub fn ckpt_restore(
        &mut self,
        r: &mut sawl_ckpt::Reader<'_>,
    ) -> Result<u64, sawl_ckpt::CkptError> {
        use sawl_ckpt::CkptError;
        self.imt.ckpt_restore(r)?;
        // Rebuild the owner map from the restored IMT, bounds-checking
        // every physical granule a corrupted table could point at.
        let mut g = 0;
        let mut region_count = 0u64;
        while g < self.granules {
            let e = self.imt.entry(g);
            if u32::from(e.q_log2) < self.p_log2 {
                return Err(CkptError::Corrupt(format!(
                    "mapping: entry at granule {g} below minimum granularity"
                )));
            }
            let nq = self.nq(e);
            if g & (nq - 1) != 0 {
                return Err(CkptError::Corrupt(format!(
                    "mapping: region at granule {g} misaligned"
                )));
            }
            let key_g = e.key() >> self.p_log2;
            let phys_base = e.prn() << (u32::from(e.q_log2) - self.p_log2);
            for j in 0..nq {
                if self.imt.entry(g + j) != e {
                    return Err(CkptError::Corrupt(format!(
                        "mapping: entry run broken at granule {}",
                        g + j
                    )));
                }
                let phys = phys_base + (j ^ key_g);
                if phys >= self.granules {
                    return Err(CkptError::Corrupt(format!(
                        "mapping: granule {} maps to physical granule {phys} beyond {}",
                        g + j,
                        self.granules
                    )));
                }
                self.owner[phys as usize] = (g + j) as u32;
            }
            region_count += 1;
            g += nq;
        }
        self.cmt.ckpt_restore(r, |r| {
            let d = r.get_u64()?;
            let q_log2 = r.get_u8()?;
            if q_log2 >= 64 {
                return Err(CkptError::Corrupt(format!("cmt: granularity 2^{q_log2} is absurd")));
            }
            Ok(ImtEntry { d, q_log2 })
        })?;
        for (base, e) in self.cmt.iter_mru() {
            if base >= self.granules || self.imt.entry(base) != e || self.base_of(base, e) != base {
                return Err(CkptError::Corrupt(format!(
                    "mapping: cached entry at granule {base} disagrees with the IMT"
                )));
            }
        }
        self.gtd.ckpt_restore(r)?;
        Ok(region_count)
    }

    /// Mean region size in lines over currently cached entries (what the
    /// running workload experiences; Figs. 13–14's "Region size" axis).
    pub fn cached_region_size(&self) -> f64 {
        if self.cmt.is_empty() {
            return (1u64 << self.p_log2) as f64;
        }
        let sum: u64 = self.cmt.iter_mru().map(|(_, e)| e.q()).sum();
        sum as f64 / self.cmt.len() as f64
    }

    /// Histogram of current region sizes across the whole memory: one
    /// count per granularity level, index = log2(Q). O(granules).
    pub fn region_size_histogram(&self, max_granularity: u64) -> Vec<(u64, u64)> {
        let max_q = max_granularity.trailing_zeros();
        let mut counts = vec![0u64; (max_q - self.p_log2 + 1) as usize];
        let mut g = 0;
        while g < self.granules {
            let e = self.imt.entry(g);
            counts[(u32::from(e.q_log2) - self.p_log2) as usize] += 1;
            g += self.nq(e);
        }
        counts.into_iter().enumerate().map(|(i, c)| (1u64 << (self.p_log2 + i as u32), c)).collect()
    }

    /// On-chip bits of this tier: the CMT entries plus the GTD state.
    pub fn onchip_bits(&self, entry_bits: u64) -> u64 {
        self.cmt.capacity() as u64 * entry_bits + self.gtd.onchip_bits()
    }

    /// Verify the mapping invariants — aligned identical-entry runs,
    /// owner-map consistency, injective line-level translation — and
    /// return the observed region count. O(data lines); test/debug only.
    pub fn check_consistency(&self) -> u64 {
        // Regions are aligned runs of identical entries.
        let mut g = 0;
        let mut region_count = 0u64;
        while g < self.granules {
            let e = self.imt.entry(g);
            let nq = self.nq(e);
            assert_eq!(g & (nq - 1), 0, "region at granule {g} misaligned");
            for j in 0..nq {
                assert_eq!(self.imt.entry(g + j), e, "entry run broken at {}", g + j);
            }
            region_count += 1;
            g += nq;
        }
        // Owner is the inverse of the granule-level mapping.
        for l in 0..self.granules {
            let e = self.imt.entry(l);
            let base = self.base_of(l, e);
            let j = l - base;
            let key_g = e.key() >> self.p_log2;
            let phys = (e.prn() << (u32::from(e.q_log2) - self.p_log2)) + (j ^ key_g);
            assert_eq!(
                u64::from(self.owner[phys as usize]),
                l,
                "owner map wrong at physical granule {phys}"
            );
        }
        // Line-level translation is injective.
        let data_lines = self.layout.data_lines;
        let mut seen = vec![false; data_lines as usize];
        for la in 0..data_lines {
            let pa = self.imt.translate(la) as usize;
            assert!(!seen[pa], "collision at pa {pa}");
            seen[pa] = true;
        }
        region_count
    }
}

impl MappingTier for TieredMapping {
    #[inline]
    fn entry(&self, granule: u64) -> ImtEntry {
        self.imt.entry(granule)
    }

    #[inline]
    fn translate(&self, la: La) -> Pa {
        self.imt.translate(la)
    }

    fn resolve_cached(&mut self, granule: u64, dev: &mut NvmDevice) -> ImtEntry {
        let auth = self.imt.entry(granule);
        let base = self.base_of(granule, auth);
        match self.cmt.lookup(base) {
            CmtLookup::Hit(e) => {
                debug_assert_eq!(e, auth, "CMT out of sync at granule {granule}");
            }
            CmtLookup::Miss => {
                let tl = self.imt.translation_line_of(base);
                self.gtd.read_line(tl, dev);
                self.cmt.insert(base, auth);
            }
        }
        auth
    }

    fn set_region(&mut self, base: u64, prn: u64, key: u64, q_log2: u8, dev: &mut NvmDevice) {
        let e = ImtEntry::pack(prn, key, q_log2);
        let nq = self.nq(e);
        debug_assert_eq!(base & (nq - 1), 0, "unaligned region base");
        // Each distinct translation line is written through the GTD before
        // the entries it holds are considered durable: if a power-loss
        // event fires on (or before) a line's write, that line's entries —
        // and everything after — keep their old contents, modeling a torn
        // multi-line update. The device-write sequence is identical to the
        // fault-free path, which issues one GTD write per distinct line.
        let mut last_tl = u64::MAX;
        let mut landed = 0u64;
        for j in 0..nq {
            let tl = self.imt.translation_line_of(base + j);
            if tl != last_tl {
                self.gtd.write_line(tl, dev);
                if dev.power_lost() {
                    break;
                }
                last_tl = tl;
            }
            self.imt.set_entry(base + j, e);
            landed += 1;
        }
        if landed < nq {
            // Torn: leave the owner map and CMT image alone. They are
            // stale now, but recovery replays this update and rebuilds
            // both before the engine serves another request.
            return;
        }
        // Owner map: logical granule base+j sits at physical granule
        // phys_base + (j ^ key_granule_bits).
        let key_g = key >> self.p_log2;
        let phys_base = prn << (u32::from(q_log2) - self.p_log2);
        for j in 0..nq {
            self.owner[(phys_base + (j ^ key_g)) as usize] = (base + j) as u32;
        }
        self.cmt.update_in_place(base, e);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sawl_nvm::NvmConfig;

    fn make() -> (TieredMapping, NvmDevice) {
        let cfg = SawlConfig {
            data_lines: 1 << 10,
            initial_granularity: 4,
            cmt_entries: 16,
            ..Default::default()
        };
        let m = TieredMapping::new(&cfg, 0xD1CE);
        let dev = NvmDevice::new(
            NvmConfig::builder()
                .lines(m.required_physical_lines())
                .banks(1)
                .endurance(u32::MAX)
                .spare_shift(6)
                .build()
                .unwrap(),
        );
        (m, dev)
    }

    #[test]
    fn identity_mapping_is_consistent() {
        let (m, _) = make();
        assert_eq!(m.check_consistency(), 1 << 8);
        for la in [0u64, 7, 512, 1023] {
            assert_eq!(m.translate(la), la);
        }
    }

    #[test]
    fn resolve_misses_then_hits_and_charges_one_read() {
        let (mut m, mut dev) = make();
        m.resolve_cached(0, &mut dev);
        assert_eq!(m.cmt().misses(), 1);
        assert_eq!(dev.wear().reads, 1, "miss must pay the in-NVM IMT read");
        m.resolve_cached(0, &mut dev);
        assert_eq!(m.cmt().hits(), 1);
        assert_eq!(dev.wear().reads, 1, "hit must not touch the device");
    }

    #[test]
    fn set_region_updates_owner_inverse_and_cmt() {
        let (mut m, mut dev) = make();
        // Swap regions 0 and 5 by hand (granule-size regions, key 2).
        m.resolve_cached(0, &mut dev); // cache entry for granule 0
        m.set_region(0, 5, 2, 2, &mut dev);
        m.set_region(5, 0, 0, 2, &mut dev);
        // Lines of granule 0 now live in physical granule 5, XORed by 2.
        assert_eq!(m.translate(0), 5 * 4 + 2);
        assert_eq!(m.occupant_q_log2(5), 2);
        // The cached image followed the update.
        let _ = m.check_consistency();
        assert!(dev.wear().total_writes > 0, "translation lines must wear");
    }

    #[test]
    fn displace_block_preserves_offsets() {
        let (mut m, mut dev) = make();
        // Exchange pattern: logical granules 0..4 want physical block
        // 8..12, so first displace that block's occupants into the space
        // being vacated, then claim it.
        m.displace_block(8, 4, 0, &mut dev);
        for g in 8..12u64 {
            // Displaced granule g kept its block offset: now at g - 8.
            assert_eq!(m.translate(g * 4), (g - 8) * 4);
        }
        for g in 0..4u64 {
            m.set_region(g, 8 + g, 0, 2, &mut dev);
        }
        let _ = m.check_consistency();
    }

    #[test]
    fn histogram_counts_every_region_at_initial_granularity() {
        let (m, _) = make();
        let h = m.region_size_histogram(64);
        assert_eq!(h[0], (4, 1 << 8));
        assert!(h[1..].iter().all(|&(_, c)| c == 0));
    }
}
