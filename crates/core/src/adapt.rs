//! The adaptation controller: hit-rate monitoring, LRU-stack sampling and
//! lazy merge/split target decisions (§3.2, §4.2).
//!
//! SAWL measures the runtime cache hit rate "by calculating the percentage
//! of memory access requests that hit the cache out of a certain total
//! number of requests observed" — the **observation window** (SOW). The
//! rate is sampled every 100 000 requests. Before acting on a low/high
//! rate, SAWL "waits for a certain number of requests to ensure that the
//! cache hit rate ... is sufficiently stable" — the **settling window**
//! (SSW). §4.2 trains both to 2^22 requests.
//!
//! Two layers live here:
//!
//! * [`HitRateMonitor`] — a pure state machine over `(hit, split-counter)`
//!   inputs, independent of the engine, so its windowing logic is directly
//!   unit tested and reusable by the NWL ablations.
//! * [`HitRateAdaptation`] — the engine-facing controller. It counts
//!   requests, samples the CMT's LRU-stack hit counters (first/second
//!   half) on the monitor's cadence, records the [`History`] time series,
//!   and turns monitor decisions into movements of the **target
//!   granularity**. Regions converge to the target *lazily*, on access
//!   (§3.2's lazy merging and splitting): the controller only answers
//!   "what should this region do next?" via
//!   [`AdaptationController::action_for`]; the engine performs the
//!   operation.

use serde::{Deserialize, Serialize};

use sawl_tiered::cmt::Cmt;
use sawl_tiered::imt::ImtEntry;

use crate::config::SawlConfig;
use crate::history::{History, Sample};

/// Granularity decision emitted by the monitor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Decision {
    /// Keep the current granularity.
    Hold,
    /// Merge cached regions (hit rate persistently low).
    Merge,
    /// Split cached regions (hit rate persistently high and hits
    /// concentrated per the §3.2 sub-queue rule).
    Split,
}

/// Per-sample inputs the controller feeds the monitor.
#[derive(Debug, Clone, Copy, Default)]
pub struct MonitorInputs {
    /// Hits in the first (MRU) half of the CMT since the last sample.
    pub hits_first_half: u64,
    /// Hits in the second half since the last sample.
    pub hits_second_half: u64,
    /// Misses since the last sample.
    pub misses: u64,
}

impl MonitorInputs {
    fn total(&self) -> u64 {
        self.hits_first_half + self.hits_second_half + self.misses
    }

    fn hits(&self) -> u64 {
        self.hits_first_half + self.hits_second_half
    }
}

/// One block of the observation-window ring buffer.
#[derive(Debug, Clone, Copy, Default)]
struct Block {
    hits: u64,
    total: u64,
    hits_first: u64,
    hits_second: u64,
}

/// Windowed hit-rate monitor with settling.
#[derive(Debug, Clone)]
pub struct HitRateMonitor {
    sample_interval: u64,
    /// Ring of per-sample blocks covering the observation window.
    ring: Vec<Block>,
    ring_pos: usize,
    filled: usize,
    /// Running sums over the ring.
    sum_hits: u64,
    sum_total: u64,
    sum_first: u64,
    sum_second: u64,
    merge_threshold: f64,
    split_threshold: f64,
    subqueue_split_threshold: f64,
    first_half_dominance: f64,
    /// Samples the condition must persist before acting.
    settle_samples: u64,
    below_streak: u64,
    above_streak: u64,
    /// Cool-down after an action, in samples.
    cooldown: u64,
}

impl HitRateMonitor {
    /// Build from a [`SawlConfig`].
    pub fn new(cfg: &SawlConfig) -> Self {
        let blocks = (cfg.observation_window / cfg.sample_interval).max(1) as usize;
        let settle_samples = (cfg.settling_window / cfg.sample_interval).max(1);
        Self {
            sample_interval: cfg.sample_interval,
            ring: vec![Block::default(); blocks],
            ring_pos: 0,
            filled: 0,
            sum_hits: 0,
            sum_total: 0,
            sum_first: 0,
            sum_second: 0,
            merge_threshold: cfg.merge_threshold,
            split_threshold: cfg.split_threshold,
            subqueue_split_threshold: cfg.subqueue_split_threshold,
            first_half_dominance: cfg.first_half_dominance,
            settle_samples,
            below_streak: 0,
            above_streak: 0,
            cooldown: 0,
        }
    }

    /// Requests per sample.
    pub fn sample_interval(&self) -> u64 {
        self.sample_interval
    }

    /// Hit rate over the observation window (`None` until the first sample).
    pub fn windowed_hit_rate(&self) -> Option<f64> {
        if self.sum_total == 0 {
            None
        } else {
            Some(self.sum_hits as f64 / self.sum_total as f64)
        }
    }

    /// Feed one sample block (covering `sample_interval` requests) and get
    /// the decision for this instant.
    pub fn on_sample(&mut self, inputs: MonitorInputs) -> Decision {
        // Rotate the ring: subtract the expiring block, add the new one.
        let slot = &mut self.ring[self.ring_pos];
        self.sum_hits -= slot.hits;
        self.sum_total -= slot.total;
        self.sum_first -= slot.hits_first;
        self.sum_second -= slot.hits_second;
        *slot = Block {
            hits: inputs.hits(),
            total: inputs.total(),
            hits_first: inputs.hits_first_half,
            hits_second: inputs.hits_second_half,
        };
        self.sum_hits += slot.hits;
        self.sum_total += slot.total;
        self.sum_first += slot.hits_first;
        self.sum_second += slot.hits_second;
        self.ring_pos = (self.ring_pos + 1) % self.ring.len();
        self.filled = (self.filled + 1).min(self.ring.len());

        if self.cooldown > 0 {
            self.cooldown -= 1;
            self.below_streak = 0;
            self.above_streak = 0;
            return Decision::Hold;
        }
        // Wait until the observation window is at least half full so the
        // windowed rate is meaningful.
        if self.filled < self.ring.len() / 2 + 1 || self.sum_total == 0 {
            return Decision::Hold;
        }
        let rate = self.sum_hits as f64 / self.sum_total as f64;

        if rate < self.merge_threshold {
            self.below_streak += 1;
            self.above_streak = 0;
            if self.below_streak >= self.settle_samples {
                self.action_taken();
                return Decision::Merge;
            }
        } else if rate > self.split_threshold && self.split_imbalance() {
            self.above_streak += 1;
            self.below_streak = 0;
            if self.above_streak >= self.settle_samples {
                self.action_taken();
                return Decision::Split;
            }
        } else {
            self.below_streak = 0;
            self.above_streak = 0;
        }
        Decision::Hold
    }

    /// §3.2's split criterion: "if the hit ratio of the first queue OR the
    /// hit ratio of the second queue >= 99%" — i.e. one half of the LRU
    /// stack alone serves ≥99% of all lookups — "the NVM system splits the
    /// region for endurance, thus avoiding the decrease of cache hit rate
    /// after region-split completes"; or the first half dominates the hits
    /// so thoroughly that the second half is dead weight. Both conditions
    /// guarantee the post-split halved coverage still holds the working
    /// set, which is what keeps SAWL from thrashing at the coverage
    /// boundary (a workload that *needs* the whole stack spreads its hits
    /// and never satisfies either).
    fn split_imbalance(&self) -> bool {
        let hits = self.sum_first + self.sum_second;
        if hits == 0 {
            return false;
        }
        let first_frac = self.sum_first as f64 / hits as f64;
        let first_ratio = self.sum_first as f64 / self.sum_total as f64;
        let second_ratio = self.sum_second as f64 / self.sum_total as f64;
        first_frac >= self.first_half_dominance
            || first_ratio >= self.subqueue_split_threshold
            || second_ratio >= self.subqueue_split_threshold
    }

    /// Crash recovery: the ring buffer, settling streaks and cooldown live
    /// in volatile SRAM, so the monitor restarts with an empty observation
    /// window (it holds again until the window half-fills, exactly as at
    /// boot).
    pub fn reset_window(&mut self) {
        self.ring.fill(Block::default());
        self.ring_pos = 0;
        self.filled = 0;
        self.sum_hits = 0;
        self.sum_total = 0;
        self.sum_first = 0;
        self.sum_second = 0;
        self.below_streak = 0;
        self.above_streak = 0;
        self.cooldown = 0;
    }

    /// Cancel the post-action cooldown. The controller calls this when a
    /// decision turned out to be a no-op (e.g. a split requested while
    /// every cached region already sits at the minimum granularity), so a
    /// fruitless decision does not stall real adaptation for a settling
    /// window.
    pub fn cancel_cooldown(&mut self) {
        self.cooldown = 0;
    }

    fn action_taken(&mut self) {
        self.below_streak = 0;
        self.above_streak = 0;
        // After acting, hold for a settling window so the effect of the
        // adjustment is observed before the next one.
        self.cooldown = self.settle_samples;
    }

    /// Checkpoint the observation window: every ring block, the rotation
    /// cursor and the settling/cooldown state. The running sums are
    /// derived and recomputed on restore. Thresholds and window sizes are
    /// configuration, rebuilt from the spec.
    pub fn ckpt_save(&self, w: &mut sawl_ckpt::Writer) {
        w.put_u64(self.ring.len() as u64);
        for b in &self.ring {
            w.put_u64(b.hits);
            w.put_u64(b.total);
            w.put_u64(b.hits_first);
            w.put_u64(b.hits_second);
        }
        w.put_u64(self.ring_pos as u64);
        w.put_u64(self.filled as u64);
        w.put_u64(self.below_streak);
        w.put_u64(self.above_streak);
        w.put_u64(self.cooldown);
    }

    /// Restore a window saved by [`ckpt_save`](Self::ckpt_save) into a
    /// monitor built from the same spec.
    pub fn ckpt_restore(
        &mut self,
        r: &mut sawl_ckpt::Reader<'_>,
    ) -> Result<(), sawl_ckpt::CkptError> {
        use sawl_ckpt::CkptError;
        let blocks = r.get_u64()?;
        if blocks != self.ring.len() as u64 {
            return Err(CkptError::Corrupt(format!(
                "monitor: {blocks} window blocks in checkpoint, {} in instance",
                self.ring.len()
            )));
        }
        let mut sums = (0u64, 0u64, 0u64, 0u64);
        for slot in &mut self.ring {
            let hits = r.get_u64()?;
            let total = r.get_u64()?;
            let hits_first = r.get_u64()?;
            let hits_second = r.get_u64()?;
            if hits > total || hits_first + hits_second != hits {
                return Err(CkptError::Corrupt("monitor: inconsistent window block".into()));
            }
            *slot = Block { hits, total, hits_first, hits_second };
            sums.0 += hits;
            sums.1 += total;
            sums.2 += hits_first;
            sums.3 += hits_second;
        }
        (self.sum_hits, self.sum_total, self.sum_first, self.sum_second) = sums;
        let ring_pos = r.get_u64()?;
        let filled = r.get_u64()?;
        if ring_pos >= self.ring.len() as u64 || filled > self.ring.len() as u64 {
            return Err(CkptError::Corrupt(format!(
                "monitor: cursor {ring_pos}/fill {filled} out of range for {} blocks",
                self.ring.len()
            )));
        }
        self.ring_pos = ring_pos as usize;
        self.filled = filled as usize;
        self.below_streak = r.get_u64()?;
        self.above_streak = r.get_u64()?;
        self.cooldown = r.get_u64()?;
        if self.below_streak > self.settle_samples
            || self.above_streak > self.settle_samples
            || self.cooldown > self.settle_samples
        {
            return Err(CkptError::Corrupt(format!(
                "monitor: streak/cooldown beyond the {}-sample settling window",
                self.settle_samples
            )));
        }
        Ok(())
    }
}

/// Lazy adaptation step the controller wants a touched region to take.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdaptAction {
    /// Merge the region with its buddy (one level up).
    Merge,
    /// Split the region in half (one level down).
    Split,
}

/// Narrow interface of the adaptation subsystem: what the engine's request
/// path needs from the controller.
pub trait AdaptationController {
    /// Count one request; `true` when a hit-rate sample is now due.
    fn begin_request(&mut self) -> bool;

    /// Take the due sample from the CMT's LRU-stack counters, record the
    /// history point, and move the target granularity per the monitor's
    /// decision. `cached_region_size` / `global_region_size` are the
    /// mapping-tier observations recorded alongside.
    fn on_sample(&mut self, cmt: &Cmt<ImtEntry>, cached_region_size: f64, global_region_size: f64);

    /// The lazy step (if any) a touched region of granularity `q_log2`
    /// should take toward the current target. Honors the merge/split
    /// enable switches.
    fn action_for(&self, q_log2: u8) -> Option<AdaptAction>;

    /// The granularity level (log2 lines) the controller currently wants.
    fn target_q_log2(&self) -> u8;
}

/// The engine-facing adaptation controller: request counting, LRU-stack
/// sampling deltas, history recording and target-granularity movement.
#[derive(Debug, Clone)]
pub struct HitRateAdaptation {
    monitor: HitRateMonitor,
    history: History,
    /// The granularity level (log2 lines) the monitor currently wants.
    /// Regions adapt toward it *lazily*, on access (§3.2's lazy merging
    /// and splitting): a merge decision raises the target, and each region
    /// is merged/split only when it is next touched, so adaptation cost is
    /// paid by the regions that actually benefit and no pass ever stalls
    /// the system.
    target_q_log2: u8,
    p_log2: u8,
    max_q_log2: u8,
    enable_merge: bool,
    enable_split: bool,
    requests: u64,
    /// Counter snapshot at the last monitor sample.
    last_first: u64,
    last_second: u64,
    last_misses: u64,
    merge_decisions: u64,
    split_decisions: u64,
}

impl HitRateAdaptation {
    /// Build from a [`SawlConfig`]; the target starts at P.
    pub fn new(cfg: &SawlConfig) -> Self {
        Self {
            monitor: HitRateMonitor::new(cfg),
            history: History::new(),
            target_q_log2: cfg.initial_granularity.trailing_zeros() as u8,
            p_log2: cfg.initial_granularity.trailing_zeros() as u8,
            max_q_log2: cfg.max_granularity.trailing_zeros() as u8,
            enable_merge: cfg.enable_merge,
            enable_split: cfg.enable_split,
            requests: 0,
            last_first: 0,
            last_second: 0,
            last_misses: 0,
            merge_decisions: 0,
            split_decisions: 0,
        }
    }

    /// Requests observed so far.
    /// Requests until the one that triggers the next monitor sample,
    /// inclusive — so `until_sample() - 1` requests are guaranteed not to
    /// cross a sample boundary.
    #[inline]
    pub fn until_sample(&self) -> u64 {
        let interval = self.monitor.sample_interval();
        interval - self.requests % interval
    }

    /// Count `k` requests known not to reach a sample boundary (run
    /// batching); equivalent to `k` non-firing
    /// [`AdaptationController::begin_request`] calls.
    #[inline]
    pub fn note_requests(&mut self, k: u64) {
        self.requests += k;
    }

    pub fn requests(&self) -> u64 {
        self.requests
    }

    /// The monitor's current windowed hit rate, `None` until a full
    /// observation window has accumulated (telemetry support).
    pub fn windowed_hit_rate(&self) -> Option<f64> {
        self.monitor.windowed_hit_rate()
    }

    /// Recorded time series (one point per monitor sample).
    pub fn history(&self) -> &History {
        &self.history
    }

    /// Monitor decisions that triggered a merge / split pass.
    pub fn decisions(&self) -> (u64, u64) {
        (self.merge_decisions, self.split_decisions)
    }

    /// Crash recovery: drop the monitor's volatile observation window and
    /// settling state. The request count, history, decision counters,
    /// target granularity and CMT-counter snapshots are controller-side
    /// host state (journaled alongside the GTD registers in the modeled
    /// architecture) and survive — the CMT's cumulative hit/miss counters
    /// survive its own [`Cmt::clear`] for the same reason, which keeps the
    /// next sample's deltas well-defined.
    pub fn reset_after_crash(&mut self) {
        self.monitor.reset_window();
    }

    /// Checkpoint the controller: monitor window, recorded history, target
    /// granularity, request clock, CMT-counter snapshots and decision
    /// counters (geometry bounds and enable switches are configuration).
    pub fn ckpt_save(&self, w: &mut sawl_ckpt::Writer) {
        self.monitor.ckpt_save(w);
        let samples = self.history.samples();
        w.put_u64(samples.len() as u64);
        for s in samples {
            w.put_u64(s.requests);
            w.put_f64(s.windowed_hit_rate);
            w.put_f64(s.instant_hit_rate);
            w.put_f64(s.cached_region_size);
            w.put_f64(s.global_region_size);
        }
        w.put_u8(self.target_q_log2);
        w.put_u64(self.requests);
        w.put_u64(self.last_first);
        w.put_u64(self.last_second);
        w.put_u64(self.last_misses);
        w.put_u64(self.merge_decisions);
        w.put_u64(self.split_decisions);
    }

    /// Restore a controller saved by [`ckpt_save`](Self::ckpt_save) into an
    /// instance built from the same spec.
    pub fn ckpt_restore(
        &mut self,
        r: &mut sawl_ckpt::Reader<'_>,
    ) -> Result<(), sawl_ckpt::CkptError> {
        use sawl_ckpt::CkptError;
        self.monitor.ckpt_restore(r)?;
        let count = r.get_u64()?;
        // One sample per interval: more samples than requests could ever
        // have produced (given u64 requests below) is plain corruption.
        let mut history = History::new();
        for _ in 0..count {
            let requests = r.get_u64()?;
            let windowed_hit_rate = r.get_f64()?;
            let instant_hit_rate = r.get_f64()?;
            let cached_region_size = r.get_f64()?;
            let global_region_size = r.get_f64()?;
            history.push(Sample {
                requests,
                windowed_hit_rate,
                instant_hit_rate,
                cached_region_size,
                global_region_size,
            });
        }
        let target_q_log2 = r.get_u8()?;
        if !(self.p_log2..=self.max_q_log2).contains(&target_q_log2) {
            return Err(CkptError::Corrupt(format!(
                "adaptation: target granularity {target_q_log2} outside [{}, {}]",
                self.p_log2, self.max_q_log2
            )));
        }
        let requests = r.get_u64()?;
        if count > requests / self.monitor.sample_interval() {
            return Err(CkptError::Corrupt(format!(
                "adaptation: {count} history samples but only {requests} requests"
            )));
        }
        self.history = history;
        self.target_q_log2 = target_q_log2;
        self.requests = requests;
        self.last_first = r.get_u64()?;
        self.last_second = r.get_u64()?;
        self.last_misses = r.get_u64()?;
        self.merge_decisions = r.get_u64()?;
        self.split_decisions = r.get_u64()?;
        Ok(())
    }

    /// Force the target granularity level (log2 lines). Test and ablation
    /// support: regions then converge lazily exactly as they would after
    /// monitor decisions.
    pub fn set_target_q_log2(&mut self, q_log2: u8) {
        assert!(
            (self.p_log2..=self.max_q_log2).contains(&q_log2),
            "target {q_log2} outside [{}, {}]",
            self.p_log2,
            self.max_q_log2
        );
        self.target_q_log2 = q_log2;
    }
}

impl AdaptationController for HitRateAdaptation {
    fn begin_request(&mut self) -> bool {
        self.requests += 1;
        self.requests.is_multiple_of(self.monitor.sample_interval())
    }

    fn on_sample(&mut self, cmt: &Cmt<ImtEntry>, cached_region_size: f64, global_region_size: f64) {
        let first = cmt.hits_first_half();
        let second = cmt.hits_second_half();
        let misses = cmt.misses();
        let inputs = MonitorInputs {
            hits_first_half: first - self.last_first,
            hits_second_half: second - self.last_second,
            misses: misses - self.last_misses,
        };
        let interval_total = inputs.hits_first_half + inputs.hits_second_half + inputs.misses;
        let instant_rate = if interval_total == 0 {
            0.0
        } else {
            (inputs.hits_first_half + inputs.hits_second_half) as f64 / interval_total as f64
        };
        self.last_first = first;
        self.last_second = second;
        self.last_misses = misses;

        let decision = self.monitor.on_sample(inputs);
        self.history.push(Sample {
            requests: self.requests,
            windowed_hit_rate: self.monitor.windowed_hit_rate().unwrap_or(0.0),
            instant_hit_rate: instant_rate,
            cached_region_size,
            global_region_size,
        });
        match decision {
            Decision::Merge if self.enable_merge => {
                self.merge_decisions += 1;
                if self.target_q_log2 < self.max_q_log2 {
                    self.target_q_log2 += 1;
                } else {
                    // Already at the cap: a no-op decision must not stall
                    // adaptation for a settling window.
                    self.monitor.cancel_cooldown();
                }
            }
            Decision::Split if self.enable_split => {
                self.split_decisions += 1;
                if self.target_q_log2 > self.p_log2 {
                    self.target_q_log2 -= 1;
                } else {
                    self.monitor.cancel_cooldown();
                }
            }
            _ => {}
        }
    }

    fn action_for(&self, q_log2: u8) -> Option<AdaptAction> {
        if q_log2 < self.target_q_log2 && self.enable_merge {
            Some(AdaptAction::Merge)
        } else if q_log2 > self.target_q_log2 && self.enable_split {
            Some(AdaptAction::Split)
        } else {
            None
        }
    }

    fn target_q_log2(&self) -> u8 {
        self.target_q_log2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(sow_samples: u64, ssw_samples: u64) -> SawlConfig {
        SawlConfig {
            sample_interval: 1000,
            observation_window: 1000 * sow_samples,
            settling_window: 1000 * ssw_samples,
            ..Default::default()
        }
    }

    fn sample(hit_rate: f64, first_frac: f64) -> MonitorInputs {
        let total = 1000u64;
        let hits = (total as f64 * hit_rate) as u64;
        let first = (hits as f64 * first_frac) as u64;
        MonitorInputs {
            hits_first_half: first,
            hits_second_half: hits - first,
            misses: total - hits,
        }
    }

    #[test]
    fn holds_until_window_fills() {
        let mut m = HitRateMonitor::new(&cfg(8, 1));
        for _ in 0..4 {
            assert_eq!(m.on_sample(sample(0.2, 0.5)), Decision::Hold);
        }
    }

    #[test]
    fn merges_after_settling_on_low_rate() {
        let mut m = HitRateMonitor::new(&cfg(4, 3));
        let mut decisions = Vec::new();
        for _ in 0..8 {
            decisions.push(m.on_sample(sample(0.5, 0.5)));
        }
        assert!(decisions.contains(&Decision::Merge));
        // Exactly one merge within the cooldown horizon.
        assert_eq!(decisions.iter().filter(|&&d| d == Decision::Merge).count(), 1);
    }

    #[test]
    fn splits_on_high_rate_with_first_half_dominance() {
        let mut m = HitRateMonitor::new(&cfg(4, 2));
        let mut got_split = false;
        for _ in 0..10 {
            if m.on_sample(sample(0.97, 0.95)) == Decision::Split {
                got_split = true;
            }
        }
        assert!(got_split);
    }

    #[test]
    fn high_rate_without_imbalance_holds() {
        let mut m = HitRateMonitor::new(&cfg(4, 2));
        for _ in 0..20 {
            // 96% hit rate but hits spread evenly across the stack: the
            // current granularity is "satisfactory" (§3.2).
            assert_eq!(m.on_sample(sample(0.96, 0.55)), Decision::Hold);
        }
    }

    #[test]
    fn subqueue_or_rule_splits_when_one_half_serves_everything() {
        // First sub-queue alone serving >= 99% of lookups fires the
        // endurance split.
        let mut m = HitRateMonitor::new(&cfg(4, 2));
        let mut got_split = false;
        for _ in 0..10 {
            if m.on_sample(sample(0.998, 0.999)) == Decision::Split {
                got_split = true;
            }
        }
        assert!(got_split);
    }

    #[test]
    fn high_but_spread_hit_rate_never_splits() {
        // 99.5% hit rate with hits spread across both halves: the working
        // set needs the whole stack, splitting would thrash — hold.
        let mut m = HitRateMonitor::new(&cfg(4, 2));
        for _ in 0..30 {
            assert_eq!(m.on_sample(sample(0.995, 0.6)), Decision::Hold);
        }
    }

    #[test]
    fn mid_band_rate_never_acts() {
        let mut m = HitRateMonitor::new(&cfg(4, 1));
        for _ in 0..50 {
            assert_eq!(m.on_sample(sample(0.92, 0.9)), Decision::Hold);
        }
    }

    #[test]
    fn settling_requires_consecutive_samples() {
        // One-sample observation window: the windowed rate equals the
        // instant rate, so alternating low / mid-band samples keep
        // resetting the settling streak and nothing ever fires.
        let mut m = HitRateMonitor::new(&cfg(1, 3));
        for i in 0..30 {
            let s = if i % 2 == 0 { sample(0.5, 0.5) } else { sample(0.92, 0.5) };
            assert_eq!(m.on_sample(s), Decision::Hold, "sample {i}");
        }
    }

    #[test]
    fn cooldown_spaces_out_actions() {
        let mut m = HitRateMonitor::new(&cfg(2, 2));
        let mut merges = 0;
        let mut gap_since_last = 0;
        let mut min_gap = u64::MAX;
        for _ in 0..40 {
            gap_since_last += 1;
            if m.on_sample(sample(0.3, 0.5)) == Decision::Merge {
                merges += 1;
                if merges > 1 {
                    min_gap = min_gap.min(gap_since_last);
                }
                gap_since_last = 0;
            }
        }
        assert!(merges >= 2, "merges {merges}");
        // settle (2) + cooldown (2) apart at minimum.
        assert!(min_gap >= 4, "actions too close: {min_gap}");
    }

    #[test]
    fn windowed_rate_tracks_recent_blocks_only() {
        let mut m = HitRateMonitor::new(&cfg(4, 100));
        for _ in 0..4 {
            m.on_sample(sample(0.2, 0.5));
        }
        assert!((m.windowed_hit_rate().unwrap() - 0.2).abs() < 0.01);
        for _ in 0..4 {
            m.on_sample(sample(1.0, 0.5));
        }
        // Old low blocks rotated out entirely.
        assert!(m.windowed_hit_rate().unwrap() > 0.99);
    }

    // ---- controller-level tests ----------------------------------------

    #[test]
    fn begin_request_fires_on_the_sample_cadence() {
        let mut a = HitRateAdaptation::new(&cfg(4, 1));
        let due: Vec<bool> = (0..2500).map(|_| a.begin_request()).collect();
        assert_eq!(due.iter().filter(|&&d| d).count(), 2);
        assert!(due[999] && due[1999]);
        assert_eq!(a.requests(), 2500);
    }

    #[test]
    fn action_for_moves_toward_target_and_honors_switches() {
        let mut a = HitRateAdaptation::new(&SawlConfig {
            initial_granularity: 4,
            max_granularity: 64,
            ..Default::default()
        });
        assert_eq!(a.action_for(2), None, "already at target");
        a.set_target_q_log2(5);
        assert_eq!(a.action_for(2), Some(AdaptAction::Merge));
        assert_eq!(a.action_for(6), Some(AdaptAction::Split));
        assert_eq!(a.action_for(5), None);

        let mut no_merge = HitRateAdaptation::new(&SawlConfig {
            initial_granularity: 4,
            max_granularity: 64,
            enable_merge: false,
            ..Default::default()
        });
        no_merge.set_target_q_log2(5);
        assert_eq!(no_merge.action_for(2), None, "merge disabled");
        assert_eq!(no_merge.action_for(6), Some(AdaptAction::Split));
    }

    #[test]
    fn sampling_low_hit_rate_raises_the_target() {
        use sawl_tiered::cmt::Cmt;
        // 4-sample SOW, 1-sample SSW: a persistent all-miss stream must
        // raise the target within a handful of samples.
        let c = cfg(4, 1);
        let mut a = HitRateAdaptation::new(&c);
        let mut cmt: Cmt<ImtEntry> = Cmt::new(4);
        let before = a.target_q_log2();
        for i in 0..8u64 {
            // Each lookup of a fresh key misses; the miss counter advances
            // between samples.
            cmt.lookup(1000 + i);
            a.on_sample(&cmt, 4.0, 4.0);
        }
        assert!(a.target_q_log2() > before, "target did not rise");
        assert!(a.decisions().0 > 0);
        assert_eq!(a.history().len(), 8);
    }
}
