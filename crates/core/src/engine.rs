//! The SAWL wear-leveling engine: a thin composition of three subsystems.
//!
//! * [mapping tier](crate::mapping) — CMT/GTD/IMT traversal, the owner
//!   inverse map, translation-line writes ([`TieredMapping`]).
//! * [adaptation controller](crate::adapt) — hit-rate monitoring,
//!   LRU-stack sampling, lazy merge/split target decisions
//!   ([`HitRateAdaptation`]).
//! * [exchange policy](crate::exchange) — region write counters, XOR-key
//!   rotation, displaced-region exchange ([`RegionExchange`]).
//!
//! The engine itself owns only the *orchestration* the paper's §3.2
//! operations need across subsystem boundaries:
//!
//! * **translate** — Fig. 11's seven steps, delegated to the mapping tier.
//! * **exchange** — wear-triggered relocation, delegated to the policy.
//! * **merge** — a region and its logical buddy combine into the naturally
//!   aligned 2Q block containing the region's current location; the
//!   block's other half is evacuated to the buddy's old space. Costs up to
//!   3·Q line writes plus the IMT updates. The buddy-leveling recursion
//!   and cost charging live here because they span mapping + policy.
//! * **split** — pure metadata: the XOR mapping guarantees each half of a
//!   region is already contiguous in physical space; the new `prn` is the
//!   old one extended by the key's MSB and the new key is the key's low
//!   bits. Zero data-line writes (asserted in tests).
//!
//! Under `debug_assertions`, every merge, split and exchange is followed
//! by a full invariant check ([`Sawl::check_invariants`]) on test-sized
//! tables (the check is O(data lines), so above 2^16 lines it runs on an
//! amortized 1-in-1024 event schedule instead).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use sawl_algos::{OpCounts, Recovery, WearLeveler};
use sawl_nvm::{La, NvmDevice, Pa};
use sawl_telemetry::{Event, EventKind, EventRing, SchemeSample};
use sawl_tiered::cmt::Cmt;
use sawl_tiered::imt::ImtEntry;
use sawl_tiered::journal::{Journal, OpKind, RegionUpdate};
use sawl_tiered::layout::TieredLayout;

use crate::adapt::{AdaptAction, AdaptationController, HitRateAdaptation};
use crate::config::{ConfigError, SawlConfig};
use crate::exchange::{ExchangePolicy, RegionExchange};
use crate::history::History;
use crate::mapping::{MappingTier, TieredMapping};

/// Aggregate statistics of a SAWL run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SawlStats {
    /// Region exchanges (PCM-S relocations) performed.
    pub exchanges: u64,
    /// Region-merge operations performed.
    pub merges: u64,
    /// Region-split operations performed.
    pub splits: u64,
    /// Monitor decisions that triggered a merge pass.
    pub merge_decisions: u64,
    /// Monitor decisions that triggered a split pass.
    pub split_decisions: u64,
    /// Current number of regions in the memory.
    pub region_count: u64,
    /// CMT hits / misses over the whole run.
    pub hits: u64,
    /// CMT misses over the whole run.
    pub misses: u64,
}

impl SawlStats {
    /// Whole-run CMT hit rate.
    pub fn hit_rate(&self) -> f64 {
        let t = self.hits + self.misses;
        if t == 0 {
            0.0
        } else {
            self.hits as f64 / t as f64
        }
    }
}

/// The self-adaptive wear leveler.
#[derive(Debug, Clone)]
pub struct Sawl {
    cfg: SawlConfig,
    mapping: TieredMapping,
    adapt: HitRateAdaptation,
    xchg: RegionExchange,
    journal: Journal,
    merges: u64,
    splits: u64,
    region_count: u64,
    /// Telemetry event ring; `None` (one predictable branch per event)
    /// unless enabled through [`WearLeveler::telemetry_events_enable`].
    events: Option<Box<EventRing>>,
    #[cfg(debug_assertions)]
    debug_events: u64,
}

impl Sawl {
    /// Build an engine; the device must provide
    /// [`Sawl::required_physical_lines`] lines. Panics on an invalid
    /// configuration — use [`Sawl::try_new`] for a typed error.
    pub fn new(cfg: SawlConfig) -> Self {
        Self::try_new(cfg).unwrap_or_else(|e| panic!("invalid SAWL config: {e}"))
    }

    /// Build an engine, surfacing configuration defects as a
    /// [`ConfigError`] instead of panicking.
    pub fn try_new(cfg: SawlConfig) -> Result<Self, ConfigError> {
        cfg.validate()?;
        let mut rng = SmallRng::seed_from_u64(cfg.seed);
        let gtd_seed: u64 = rng.random();
        let mapping = TieredMapping::new(&cfg, gtd_seed);
        let granules = mapping.granules();
        Ok(Self {
            adapt: HitRateAdaptation::new(&cfg),
            xchg: RegionExchange::new(granules, cfg.swap_period, rng),
            journal: Journal::new(),
            merges: 0,
            splits: 0,
            region_count: granules,
            events: None,
            #[cfg(debug_assertions)]
            debug_events: 0,
            mapping,
            cfg,
        })
    }

    /// Physical lines the device must provide.
    pub fn required_physical_lines(&self) -> u64 {
        self.mapping.required_physical_lines()
    }

    /// The configuration.
    pub fn config(&self) -> &SawlConfig {
        &self.cfg
    }

    /// Run statistics (exchanges/merges/splits/hits/...).
    pub fn stats(&self) -> SawlStats {
        let (merge_decisions, split_decisions) = self.adapt.decisions();
        SawlStats {
            exchanges: self.xchg.exchanges(),
            merges: self.merges,
            splits: self.splits,
            merge_decisions,
            split_decisions,
            region_count: self.region_count,
            hits: self.mapping.cmt().hits(),
            misses: self.mapping.cmt().misses(),
        }
    }

    /// Recorded time series (one point per monitor sample).
    pub fn history(&self) -> &History {
        self.adapt.history()
    }

    /// The CMT (for inspection in tests and the timing model).
    pub fn cmt(&self) -> &Cmt<ImtEntry> {
        self.mapping.cmt()
    }

    /// The physical layout.
    pub fn layout(&self) -> TieredLayout {
        self.mapping.layout()
    }

    /// Authoritative IMT entry covering `granule` (test/probe support).
    pub fn entry(&self, granule: u64) -> ImtEntry {
        self.mapping.entry(granule)
    }

    /// Base granule of the region covering `granule`.
    pub fn region_base(&self, granule: u64) -> u64 {
        self.mapping.base_of(granule, self.mapping.entry(granule))
    }

    /// Mean region size in lines over currently cached entries (what the
    /// running workload experiences; Figs. 13–14's "Region size" axis).
    pub fn cached_region_size(&self) -> f64 {
        self.mapping.cached_region_size()
    }

    /// The granularity (in lines) the monitor currently targets; regions
    /// converge to it lazily as they are accessed.
    pub fn target_granularity(&self) -> u64 {
        1 << self.adapt.target_q_log2()
    }

    /// Force the target granularity level (log2 lines). Test and ablation
    /// support: regions then converge lazily exactly as after monitor
    /// decisions.
    pub fn set_target_q_log2(&mut self, q_log2: u8) {
        self.adapt.set_target_q_log2(q_log2);
    }

    /// Mean region size in lines over the whole memory.
    pub fn global_region_size(&self) -> f64 {
        self.cfg.data_lines as f64 / self.region_count as f64
    }

    /// Histogram of current region sizes across the whole memory: one
    /// count per granularity level, index = log2(Q). O(granules).
    pub fn region_size_histogram(&self) -> Vec<(u64, u64)> {
        self.mapping.region_size_histogram(self.cfg.max_granularity)
    }

    /// Resolve the mapping entry covering `lrn_granule` through the CMT,
    /// then lazily adapt the touched region one level toward the
    /// controller's target granularity (§3.2: one level per access bounds
    /// the latency a single request can suffer; hot regions converge in a
    /// few touches, cold regions never pay).
    fn resolve(&mut self, lrn_granule: u64, dev: &mut NvmDevice) -> ImtEntry {
        let auth = self.mapping.resolve_cached(lrn_granule, dev);
        let moved = match self.adapt.action_for(auth.q_log2) {
            Some(AdaptAction::Merge) => self.merge(self.mapping.base_of(lrn_granule, auth), dev),
            Some(AdaptAction::Split) => self.split(self.mapping.base_of(lrn_granule, auth), dev),
            None => false,
        };
        if moved {
            self.mapping.entry(lrn_granule)
        } else {
            auth
        }
    }

    // ---- wear-leveling operations --------------------------------------

    /// PCM-S exchange: relocate the region at `base` to a random
    /// equal-size block. Journaled: the full set of region updates is made
    /// durable before the first NVM write, so a power loss mid-exchange is
    /// rolled forward by [`Sawl::recover`].
    pub fn exchange(&mut self, base: u64, dev: &mut NvmDevice) {
        if dev.power_lost() {
            return;
        }
        let plan = self.xchg.plan(&self.mapping, base);
        self.journal.begin(OpKind::Exchange, plan.updates.clone());
        self.xchg.apply(&mut self.mapping, &plan, dev);
        if dev.power_lost() {
            // The journal record stays pending; recovery finishes the op.
            return;
        }
        self.journal.commit();
        self.push_event(EventKind::Exchange { base });
        self.debug_check_invariants();
    }

    /// §3.2 region-merge of the region at `base` with its logical buddy.
    /// Returns `false` when the pair is not mergeable (size cap reached).
    pub fn merge(&mut self, base: u64, dev: &mut NvmDevice) -> bool {
        if dev.power_lost() {
            return false;
        }
        let e = self.mapping.entry(base);
        if e.q() >= self.cfg.max_granularity {
            return false;
        }
        let nq = self.mapping.nq(e);
        let buddy = base ^ nq;
        // A buddy can never be *larger*: a larger region is aligned to its
        // own size and would cover `base` too, contradicting `base`'s entry.
        // It can be smaller when earlier merges were applied unevenly; in
        // that case level the buddy up first by merging its pieces ("SAWL
        // chooses the closest non-merged logical location ... and merges
        // them", §3.2), then merge the equal-size pair.
        loop {
            let eb = self.mapping.entry(buddy);
            debug_assert!(eb.q_log2 <= e.q_log2, "oversized buddy at {buddy}");
            if eb.q_log2 == e.q_log2 {
                break;
            }
            if !self.merge(self.mapping.base_of(buddy, eb), dev) {
                return false;
            }
        }
        // Re-fetch both entries: the buddy-leveling merges above may have
        // physically relocated this region while evacuating target blocks.
        let e = self.mapping.entry(base);
        let eb = self.mapping.entry(buddy);
        debug_assert_eq!(self.mapping.base_of(buddy, eb), buddy);

        let new_q_log2 = e.q_log2 + 1;
        let my_block = e.prn(); // Q-sized block index
        let other_half = my_block ^ 1;
        let target2q = my_block >> 1; // 2Q-sized block index
        let b_block = eb.prn();
        let new_base = base & !(2 * nq - 1);
        let new_key = self.xchg.draw_region_key(e.q() * 2);

        // Journal the whole operation — evacuation updates plus the merged
        // region's descriptor — before its first NVM write.
        let mut updates = if b_block != other_half {
            self.mapping.plan_displacement(other_half * nq, nq, b_block * nq)
        } else {
            Vec::new()
        };
        updates.push(RegionUpdate {
            base: new_base,
            prn: target2q,
            key: new_key,
            q_log2: new_q_log2,
        });
        self.journal.begin(OpKind::Merge, updates.clone());
        self.merges += 1;

        if b_block != other_half {
            // Evacuate the other half of the target into B's old block;
            // the evacuated data lands there: Q line writes.
            for u in &updates[..updates.len() - 1] {
                self.mapping.apply_update(u, dev);
            }
            self.mapping.charge_block(b_block * nq, nq, dev);
        }
        // Stale CMT entries for the two halves disappear; the merged entry
        // is inserted fresh (merges are triggered for cached regions).
        self.mapping.cache_remove(base);
        self.mapping.cache_remove(buddy);
        self.mapping.apply_update(&updates[updates.len() - 1], dev);
        self.mapping.cache_insert_current(new_base);
        // The merged region's 2Q lines are rewritten under the new key.
        self.mapping.charge_block(target2q * 2 * nq, 2 * nq, dev);
        if dev.power_lost() {
            // The journal record stays pending; recovery finishes the merge.
            return false;
        }
        self.journal.commit();
        self.xchg.on_merge(base, buddy, new_base);
        self.region_count -= 1;
        self.push_event(EventKind::Merge { base: new_base });
        self.debug_check_invariants();
        true
    }

    /// §3.2 region-split of the region at `base` into two halves. Pure
    /// metadata: zero data-line writes (the tests assert this). Returns
    /// `false` at the minimum granularity.
    pub fn split(&mut self, base: u64, dev: &mut NvmDevice) -> bool {
        if dev.power_lost() {
            return false;
        }
        let e = self.mapping.entry(base);
        if u32::from(e.q_log2) <= self.mapping.p_log2() {
            return false;
        }
        let nq = self.mapping.nq(e);
        let half = nq / 2;
        let key = e.key();
        let k_msb = key >> (e.q_log2 - 1);
        let k_low = key & ((e.q() / 2) - 1);
        let child_q = e.q_log2 - 1;
        // "The new physical address of the sub-regions is obtained by the
        // region address XORing with the MSB of the offset parameter" — in
        // D-packing terms each child prn extends the parent prn by
        // (h ^ key MSB). Journaled before the first translation-line write.
        let updates: Vec<RegionUpdate> = (0..2u64)
            .map(|h| RegionUpdate {
                base: base + h * half,
                prn: (e.prn() << 1) | (h ^ k_msb),
                key: k_low,
                q_log2: child_q,
            })
            .collect();
        self.journal.begin(OpKind::Split, updates.clone());
        self.splits += 1;
        self.mapping.cache_remove(base);
        for u in &updates {
            self.mapping.apply_update(u, dev);
            self.mapping.cache_insert_current(u.base);
        }
        if dev.power_lost() {
            // The journal record stays pending; recovery finishes the split.
            return false;
        }
        self.journal.commit();
        self.xchg.on_split(base, base + half);
        self.region_count += 1;
        self.push_event(EventKind::Split { base });
        self.debug_check_invariants();
        true
    }

    // ---- request path ---------------------------------------------------

    /// Advance the adaptation controller after each request; it samples
    /// the CMT and adjusts the target granularity when due (regions follow
    /// lazily, on access).
    fn tick(&mut self) {
        if self.adapt.begin_request() {
            let cached = self.mapping.cached_region_size();
            let global = self.global_region_size();
            let before = self.adapt.target_q_log2();
            self.adapt.on_sample(self.mapping.cmt(), cached, global);
            if self.events.is_some() {
                let after = self.adapt.target_q_log2();
                if after > before {
                    self.push_event(EventKind::TargetUp { q_log2: after });
                } else if after < before {
                    self.push_event(EventKind::TargetDown { q_log2: after });
                }
            }
        }
    }

    /// Append to the telemetry event ring (no-op unless enabled), stamped
    /// with the adaptation request clock.
    #[inline]
    fn push_event(&mut self, kind: EventKind) {
        if let Some(ring) = self.events.as_deref_mut() {
            ring.push(Event { requests: self.adapt.requests(), kind });
        }
    }

    // ---- crash recovery -------------------------------------------------

    /// Post-power-loss recovery: restore device power, resolve the
    /// interrupted operation (if the crash hit one mid-flight) and rebuild
    /// every volatile structure from the durable IMT + journal.
    ///
    /// * **Roll forward** when any journaled region update already landed:
    ///   replay every update (idempotent) and recharge the operation's
    ///   data movement — the recovered controller cannot know which lines
    ///   were rewritten before the crash, so it conservatively rewrites the
    ///   full footprint (splits are pure metadata and recharge nothing).
    /// * **Roll back** when nothing landed: the old mapping is intact and
    ///   the record is discarded.
    ///
    /// Then the owner map and region count are rebuilt by walking the IMT,
    /// the CMT is cleared (on-chip SRAM), the exchange counters restart and
    /// the monitor's observation window empties. Another power loss during
    /// replay leaves the journal pending and returns
    /// [`Recovery::complete`]` == false`; calling `recover` again resumes.
    pub fn recover(&mut self, dev: &mut NvmDevice) -> Recovery {
        dev.restore_power();
        let mut rec = Recovery::CLEAN;
        if let Some(pending) = self.journal.pending() {
            let kind = pending.kind;
            let updates = pending.updates.clone();
            if updates.iter().any(|u| self.mapping.update_landed(u)) {
                self.journal.note_replay();
                rec.replayed = true;
                let p_log2 = self.mapping.p_log2();
                for u in &updates {
                    self.mapping.apply_update(u, dev);
                    if kind != OpKind::Split {
                        let nq = 1u64 << (u32::from(u.q_log2) - p_log2);
                        self.mapping.charge_block(u.prn * nq, nq, dev);
                    }
                    if dev.power_lost() {
                        rec.complete = false;
                        return rec;
                    }
                }
                self.journal.commit();
            } else {
                self.journal.rollback();
                rec.rolled_back = true;
            }
        }
        self.region_count = self.mapping.rebuild_after_crash();
        self.xchg.reset_after_crash();
        self.adapt.reset_after_crash();
        rec
    }

    /// The mapping-update journal (commit/replay/rollback counters).
    pub fn journal(&self) -> &Journal {
        &self.journal
    }

    // ---- checkpoint / resume -------------------------------------------

    /// Checkpoint every piece of mutable engine state: the mapping tier
    /// (IMT, CMT, GTD), the adaptation controller (window, history,
    /// target), the exchange policy (counters + RNG), the journal, the
    /// merge/split tallies and the telemetry event ring. Restoring into a
    /// twin built from the same config resumes the run byte-identically —
    /// unlike [`Sawl::recover`], which deliberately restarts the volatile
    /// structures cold after a power loss.
    pub fn ckpt_save(&self, w: &mut sawl_ckpt::Writer) {
        self.mapping.ckpt_save(w);
        self.adapt.ckpt_save(w);
        self.xchg.ckpt_save(w);
        self.journal.ckpt_save(w);
        w.put_u64(self.merges);
        w.put_u64(self.splits);
        match self.events.as_deref() {
            None => w.put_bool(false),
            Some(ring) => {
                w.put_bool(true);
                ring.ckpt_save(w);
            }
        }
    }

    /// Restore state saved by [`Sawl::ckpt_save`] into an engine built
    /// from the same config. The region count is recomputed from the
    /// restored IMT while the owner map is rebuilt.
    pub fn ckpt_restore(
        &mut self,
        r: &mut sawl_ckpt::Reader<'_>,
    ) -> Result<(), sawl_ckpt::CkptError> {
        self.region_count = self.mapping.ckpt_restore(r)?;
        self.adapt.ckpt_restore(r)?;
        self.xchg.ckpt_restore(r)?;
        self.journal.ckpt_restore(r)?;
        self.merges = r.get_u64()?;
        self.splits = r.get_u64()?;
        self.events = if r.get_bool()? { Some(Box::new(EventRing::ckpt_load(r)?)) } else { None };
        Ok(())
    }

    /// Verify internal invariants: region alignment/identical-entry runs,
    /// owner-map consistency and injective translation. O(data lines);
    /// runs after every merge/split/exchange under `debug_assertions`.
    pub fn check_invariants(&self) {
        let regions = self.mapping.check_consistency();
        assert_eq!(regions, self.region_count, "region count drifted");
    }

    #[inline]
    fn debug_check_invariants(&mut self) {
        #[cfg(debug_assertions)]
        {
            // The full check is O(data lines): affordable after every
            // event on test-sized tables, amortized on production-scale
            // ones so debug integration runs stay usable.
            self.debug_events += 1;
            if self.cfg.data_lines <= (1 << 16) || self.debug_events.is_multiple_of(1024) {
                self.check_invariants();
            }
        }
    }
}

impl WearLeveler for Sawl {
    fn name(&self) -> &'static str {
        "sawl"
    }

    fn logical_lines(&self) -> u64 {
        self.cfg.data_lines
    }

    #[inline]
    fn translate(&self, la: La) -> Pa {
        self.mapping.translate(la)
    }

    fn write(&mut self, la: La, dev: &mut NvmDevice) -> Pa {
        let g = la >> self.mapping.p_log2();
        let e = self.resolve(g, dev);
        let pa = e.translate(la);
        dev.write(pa);
        let base = self.mapping.base_of(g, e);
        if self.xchg.record_write(base, e.q()) {
            self.exchange(base, dev);
        }
        self.tick();
        pa
    }

    fn read(&mut self, la: La, dev: &mut NvmDevice) -> Pa {
        let g = la >> self.mapping.p_log2();
        let e = self.resolve(g, dev);
        let pa = e.translate(la);
        dev.read(pa);
        self.tick();
        pa
    }

    fn write_run(&mut self, la: La, n: u64, dev: &mut NvmDevice) -> u64 {
        // Scalar-first, then batch the gap to the next event. One `write`
        // serves the next request exactly (CMT miss/insert, lazy
        // merge/split, exchange trigger, monitor sample); afterwards, as
        // long as the touched region is settled at the target granularity
        // and cached, every write up to — but excluding — the next
        // exchange trigger or sample boundary repeats the same CMT front
        // hit and the same physical line, so the whole gap collapses to
        // counter arithmetic plus one `NvmDevice::write_run`.
        let g = la >> self.mapping.p_log2();
        let mut done = 0;
        while done < n {
            self.write(la, dev);
            done += 1;
            if dev.is_dead() || dev.power_lost() || done >= n {
                break;
            }
            let e = self.mapping.entry(g);
            if self.adapt.action_for(e.q_log2).is_some() {
                // Still adapting one level per touch: stay scalar.
                continue;
            }
            let base = self.mapping.base_of(g, e);
            if self.mapping.cmt().peek(base).is_none() {
                // A merge/split rebased the region; the next scalar write
                // must take the CMT miss (GTD read + insert).
                continue;
            }
            let gap = self.xchg.until_trigger(base, e.q()).min(self.adapt.until_sample()) - 1;
            let k = (n - done).min(gap);
            if k == 0 {
                continue;
            }
            let (applied, _) = dev.write_run(e.translate(la), k);
            self.xchg.note_writes(base, applied);
            self.mapping.record_repeat_hits(base, applied);
            self.adapt.note_requests(applied);
            done += applied;
            if applied < k {
                break;
            }
        }
        done
    }

    fn quiet_writes(&self, la: La) -> u64 {
        // Mirrors the batched `write_run` guards: quiet requires a settled
        // (non-adapting) region whose front entry is cached, and ends
        // strictly before the nearer of the exchange trigger and the
        // monitor's sample boundary (a sample can decide a merge/split).
        let g = la >> self.mapping.p_log2();
        let e = self.mapping.entry(g);
        if self.adapt.action_for(e.q_log2).is_some() {
            return 0;
        }
        let base = self.mapping.base_of(g, e);
        if self.mapping.cmt().peek(base).is_none() {
            return 0;
        }
        self.xchg.until_trigger(base, e.q()).min(self.adapt.until_sample()) - 1
    }

    fn recover(&mut self, dev: &mut NvmDevice) -> Recovery {
        Sawl::recover(self, dev)
    }

    fn onchip_bits(&self) -> u64 {
        self.mapping.onchip_bits(self.cfg.entry_bits())
    }

    fn telemetry_sample(&self, out: &mut SchemeSample) {
        let cmt = self.mapping.cmt();
        out.cmt_hits = Some(cmt.hits());
        out.cmt_misses = Some(cmt.misses());
        out.cmt_hits_first_half = Some(cmt.hits_first_half());
        out.cmt_hits_second_half = Some(cmt.hits_second_half());
        // Same fallback the engine's own History uses before a full
        // observation window accumulates.
        out.windowed_hit_rate = Some(self.adapt.windowed_hit_rate().unwrap_or(0.0));
        out.merges = Some(self.merges);
        out.splits = Some(self.splits);
        out.exchanges = Some(self.xchg.exchanges());
        out.journal_begins = Some(self.journal.begins());
        out.journal_commits = Some(self.journal.commits());
        out.journal_rollbacks = Some(self.journal.rollbacks());
        out.region_count = Some(self.region_count);
        out.region_size_cached = Some(self.mapping.cached_region_size());
        out.region_size_global = Some(self.global_region_size());
    }

    fn telemetry_events_enable(&mut self, capacity: usize) {
        self.events = Some(Box::new(EventRing::new(capacity)));
    }

    fn op_counts(&self) -> OpCounts {
        OpCounts { exchanges: self.xchg.exchanges(), reorgs: self.merges + self.splits }
    }

    fn telemetry_events_take(&mut self) -> Option<(Vec<Event>, u64)> {
        self.events.take().map(|ring| ring.into_parts())
    }
}
