//! The SAWL wear-leveling engine.
//!
//! ## Representation
//!
//! The logical space is divided into *granules* of `P` lines (the initial
//! granularity, §3.2: "the minimum wear-leveling granularity cannot be
//! smaller than the initial configuration"). The IMT holds one entry per
//! granule; a *region* of the current granularity `Q = 2^k · P` is a run of
//! `Q/P` adjacent granules whose entries are identical — exactly the
//! paper's encoding ("to indicate the sub-regions belonging to a large
//! region, their address information is identical", Fig. 10). Regions are
//! naturally aligned, and a region's physical block is aligned to its own
//! size because the packed `D = prn·Q + key` places it at `prn · Q`.
//!
//! We additionally keep the inverse map `owner[physical granule] → logical
//! granule`, which the merge/exchange operations need to find the current
//! occupants of a target block; hardware derives the same information from
//! the IMT it is about to rewrite.
//!
//! ## Operations
//!
//! * **translate** — Fig. 11's seven steps (CMT probe, GTD+IMT on miss,
//!   `prn = D/Q`, `key = D%Q`, `pao = lao ⊕ key`, `pma = prn·Q + pao`).
//! * **exchange** — PCM-S data exchange at the *current* granularity: after
//!   `swap_period · Q` writes to a region it is relocated to a uniformly
//!   random equal-size block, displacing the block's occupants back to the
//!   vacated space (2·Q line writes, the PCM-S cost).
//! * **merge** — §3.2's region-merge: a region and its logical buddy
//!   combine into the naturally aligned 2Q block containing the region's
//!   current location; the block's other half is evacuated to the buddy's
//!   old space. Costs up to 3·Q line writes plus the IMT updates.
//! * **split** — §3.2's region-split: pure metadata. The XOR mapping
//!   guarantees each half of a region is already contiguous in physical
//!   space; the new `prn` is the old one extended by the key's MSB and the
//!   new key is the key's low bits. Zero data-line writes (asserted in
//!   tests).
//!
//! One simulation shortcut, documented here once: `resolve` reads the
//! *authoritative* granularity from the in-memory IMT image to form the
//! CMT probe key, where hardware would use a range-matching (TCAM-style)
//! lookup over the cached entries. The observable behaviour — which entry
//! hits, what gets evicted, every counter — is identical, because the CMT
//! is kept coherent on every granularity change.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use sawl_algos::WearLeveler;
use sawl_nvm::{La, NvmDevice, Pa};
use sawl_tiered::cmt::{Cmt, CmtLookup};
use sawl_tiered::gtd::Gtd;
use sawl_tiered::imt::{ImtEntry, ImtTable};
use sawl_tiered::layout::TieredLayout;

use crate::config::SawlConfig;
use crate::history::{History, Sample};
use crate::monitor::{Decision, HitRateMonitor, MonitorInputs};

/// Aggregate statistics of a SAWL run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SawlStats {
    /// Region exchanges (PCM-S relocations) performed.
    pub exchanges: u64,
    /// Region-merge operations performed.
    pub merges: u64,
    /// Region-split operations performed.
    pub splits: u64,
    /// Monitor decisions that triggered a merge pass.
    pub merge_decisions: u64,
    /// Monitor decisions that triggered a split pass.
    pub split_decisions: u64,
    /// Current number of regions in the memory.
    pub region_count: u64,
    /// CMT hits / misses over the whole run.
    pub hits: u64,
    /// CMT misses over the whole run.
    pub misses: u64,
}

impl SawlStats {
    /// Whole-run CMT hit rate.
    pub fn hit_rate(&self) -> f64 {
        let t = self.hits + self.misses;
        if t == 0 {
            0.0
        } else {
            self.hits as f64 / t as f64
        }
    }
}

/// The self-adaptive wear leveler.
#[derive(Debug, Clone)]
pub struct Sawl {
    cfg: SawlConfig,
    layout: TieredLayout,
    p_log2: u32,
    /// Total granules (data_lines / P).
    granules: u64,
    imt: ImtTable,
    /// physical granule -> logical granule.
    owner: Vec<u32>,
    /// Demand writes per region, indexed by the region's base granule.
    ctr: Vec<u32>,
    cmt: Cmt<ImtEntry>,
    gtd: Gtd,
    monitor: HitRateMonitor,
    history: History,
    /// The granularity level (log2 lines) the monitor currently wants.
    /// Regions adapt toward it *lazily*, on access (§3.2's lazy merging
    /// and splitting): a merge decision raises the target, and each region
    /// is merged/split only when it is next touched, so adaptation cost is
    /// paid by the regions that actually benefit and no pass ever stalls
    /// the system.
    target_q_log2: u8,
    rng: SmallRng,
    requests: u64,
    /// Counter snapshot at the last monitor sample.
    last_first: u64,
    last_second: u64,
    last_misses: u64,
    stats: SawlStats,
    /// Scratch buffer for collecting displaced regions (avoids allocating
    /// in the exchange path).
    scratch_regions: Vec<(u64, ImtEntry)>,
}

impl Sawl {
    /// Build an engine; the device must provide
    /// [`Sawl::required_physical_lines`] lines.
    pub fn new(cfg: SawlConfig) -> Self {
        cfg.validate();
        let p = cfg.initial_granularity;
        let layout = TieredLayout::new(cfg.data_lines, p);
        let granules = cfg.data_lines / p;
        let mut rng = SmallRng::seed_from_u64(cfg.seed);
        let gtd = Gtd::new(
            layout.translation_base(),
            layout.translation_space,
            cfg.gtd_period,
            rng.random(),
        );
        Self {
            p_log2: p.trailing_zeros(),
            granules,
            imt: ImtTable::identity(cfg.data_lines, p),
            owner: (0..granules as u32).collect(),
            ctr: vec![0; granules as usize],
            cmt: Cmt::new(cfg.cmt_entries),
            gtd,
            monitor: HitRateMonitor::new(&cfg),
            history: History::new(),
            rng,
            requests: 0,
            last_first: 0,
            last_second: 0,
            last_misses: 0,
            stats: SawlStats { region_count: granules, ..Default::default() },
            target_q_log2: p.trailing_zeros() as u8,
            scratch_regions: Vec::with_capacity(16),
            layout,
            cfg,
        }
    }

    /// Physical lines the device must provide.
    pub fn required_physical_lines(&self) -> u64 {
        self.layout.total_lines()
    }

    /// The configuration.
    pub fn config(&self) -> &SawlConfig {
        &self.cfg
    }

    /// Run statistics (exchanges/merges/splits/hits/...).
    pub fn stats(&self) -> SawlStats {
        let mut s = self.stats;
        s.hits = self.cmt.hits();
        s.misses = self.cmt.misses();
        s
    }

    /// Recorded time series (one point per monitor sample).
    pub fn history(&self) -> &History {
        &self.history
    }

    /// The CMT (for inspection in tests and the timing model).
    pub fn cmt(&self) -> &Cmt<ImtEntry> {
        &self.cmt
    }

    /// The physical layout.
    pub fn layout(&self) -> TieredLayout {
        self.layout
    }

    /// Mean region size in lines over currently cached entries (what the
    /// running workload experiences; Figs. 13–14's "Region size" axis).
    pub fn cached_region_size(&self) -> f64 {
        if self.cmt.is_empty() {
            return self.cfg.initial_granularity as f64;
        }
        let sum: u64 = self.cmt.iter_mru().map(|(_, e)| e.q()).sum();
        sum as f64 / self.cmt.len() as f64
    }

    /// The granularity (in lines) the monitor currently targets; regions
    /// converge to it lazily as they are accessed.
    pub fn target_granularity(&self) -> u64 {
        1 << self.target_q_log2
    }

    /// Mean region size in lines over the whole memory.
    pub fn global_region_size(&self) -> f64 {
        self.cfg.data_lines as f64 / self.stats.region_count as f64
    }

    /// Histogram of current region sizes across the whole memory: one
    /// count per granularity level, index = log2(Q). O(granules).
    pub fn region_size_histogram(&self) -> Vec<(u64, u64)> {
        let max_q = self.cfg.max_granularity.trailing_zeros();
        let mut counts = vec![0u64; (max_q - self.p_log2 + 1) as usize];
        let mut g = 0;
        while g < self.granules {
            let e = self.imt.entry(g);
            counts[(u32::from(e.q_log2) - self.p_log2) as usize] += 1;
            g += self.nq(e);
        }
        counts
            .into_iter()
            .enumerate()
            .map(|(i, c)| (1u64 << (self.p_log2 + i as u32), c))
            .collect()
    }

    // ---- helpers ------------------------------------------------------

    /// Granules per region for an entry.
    #[inline]
    fn nq(&self, e: ImtEntry) -> u64 {
        1 << (u32::from(e.q_log2) - self.p_log2)
    }

    /// Base granule of the region covering granule `g` under entry `e`.
    #[inline]
    fn base_of(&self, g: u64, e: ImtEntry) -> u64 {
        g & !(self.nq(e) - 1)
    }

    /// Resolve the mapping entry covering `lrn_granule` through the CMT,
    /// charging an in-NVM IMT read on a miss, then lazily adapt the
    /// touched region one level toward the monitor's target granularity.
    fn resolve(&mut self, lrn_granule: u64, dev: &mut NvmDevice) -> ImtEntry {
        let auth = self.imt.entry(lrn_granule);
        let base = self.base_of(lrn_granule, auth);
        match self.cmt.lookup(base) {
            CmtLookup::Hit(e) => {
                debug_assert_eq!(e, auth, "CMT out of sync at granule {lrn_granule}");
            }
            CmtLookup::Miss => {
                let tl = self.imt.translation_line_of(base);
                self.gtd.read_line(tl, dev);
                self.cmt.insert(base, auth);
            }
        }
        // Lazy merge/split (§3.2): one level per access bounds the latency
        // a single request can suffer; hot regions converge in a few
        // touches, cold regions never pay.
        if auth.q_log2 < self.target_q_log2 && self.cfg.enable_merge {
            if self.merge(base, dev) {
                return self.imt.entry(lrn_granule);
            }
        } else if auth.q_log2 > self.target_q_log2 && self.cfg.enable_split {
            if self.split(base, dev) {
                return self.imt.entry(lrn_granule);
            }
        }
        auth
    }

    /// Rewrite the IMT entries, owner map and CMT image of the region at
    /// `base` to placement `(prn, key, q_log2)`; charges the translation
    /// line writes. Does NOT charge data-line writes — callers do, because
    /// the data-movement cost depends on the operation (split moves none).
    fn set_region(&mut self, base: u64, prn: u64, key: u64, q_log2: u8, dev: &mut NvmDevice) {
        let e = ImtEntry::pack(prn, key, q_log2);
        let nq = self.nq(e);
        debug_assert_eq!(base & (nq - 1), 0, "unaligned region base");
        let first_tl = self.imt.set_entry(base, e);
        let mut last_tl = first_tl;
        self.gtd.write_line(first_tl, dev);
        for j in 1..nq {
            let tl = self.imt.set_entry(base + j, e);
            if tl != last_tl {
                self.gtd.write_line(tl, dev);
                last_tl = tl;
            }
        }
        // Owner map: logical granule base+j sits at physical granule
        // phys_base + (j ^ key_granule_bits).
        let key_g = key >> self.p_log2;
        let phys_base = prn << (u32::from(q_log2) - self.p_log2);
        for j in 0..nq {
            self.owner[(phys_base + (j ^ key_g)) as usize] = (base + j) as u32;
        }
        self.cmt.update_in_place(base, e);
    }

    /// Collect the regions currently occupying `count` physical granules
    /// starting at `start` into `scratch_regions` (base granule + entry).
    fn collect_occupants(&mut self, start: u64, count: u64) {
        self.scratch_regions.clear();
        let mut g = start;
        while g < start + count {
            let o = u64::from(self.owner[g as usize]);
            let e = self.imt.entry(o);
            let base = self.base_of(o, e);
            self.scratch_regions.push((base, e));
            g += self.nq(e);
        }
    }

    /// Charge `count` granules' worth of data-line writes starting at
    /// physical granule `start`.
    fn charge_block(&self, start_granule: u64, granule_count: u64, dev: &mut NvmDevice) {
        let p = self.cfg.initial_granularity;
        let first = start_granule * p;
        for line in first..first + granule_count * p {
            dev.write_wl(line);
        }
    }

    // ---- wear-leveling operations --------------------------------------

    /// PCM-S exchange: relocate the region at `base` to a random equal-size
    /// block.
    fn exchange(&mut self, base: u64, dev: &mut NvmDevice) {
        let e = self.imt.entry(base);
        let nq = self.nq(e);
        let q_log2 = e.q_log2;
        let total_blocks = self.granules / nq;
        let my_block = e.prn();
        // Find a target block not owned by a larger region (a handful of
        // retries suffices; larger regions are rare).
        let mut target = my_block;
        for _ in 0..16 {
            let t = self.rng.random_range(0..total_blocks);
            let occupant = u64::from(self.owner[(t * nq) as usize]);
            if self.imt.entry(occupant).q_log2 <= q_log2 {
                target = t;
                break;
            }
        }
        let new_key = self.rng.random::<u64>() & (e.q() - 1);
        if target == my_block {
            // Re-key in place: every line of the block is rewritten.
            self.set_region(base, my_block, new_key, q_log2, dev);
            self.charge_block(my_block * nq, nq, dev);
        } else {
            // Displace the target block's occupants into our old block,
            // preserving their offsets within the block.
            self.collect_occupants(target * nq, nq);
            let displaced = std::mem::take(&mut self.scratch_regions);
            for &(dbase, dentry) in &displaced {
                let dshift = u32::from(dentry.q_log2) - self.p_log2;
                let dphys = dentry.prn() << dshift;
                let offset = dphys - target * nq;
                let new_prn = (my_block * nq + offset) >> dshift;
                self.set_region(dbase, new_prn, dentry.key(), dentry.q_log2, dev);
            }
            self.scratch_regions = displaced;
            self.set_region(base, target, new_key, q_log2, dev);
            // Data movement: both blocks fully rewritten.
            self.charge_block(target * nq, nq, dev);
            self.charge_block(my_block * nq, nq, dev);
        }
        self.ctr[base as usize] = 0;
        self.stats.exchanges += 1;
    }

    /// §3.2 region-merge of the region at `base` with its logical buddy.
    /// Returns `false` when the pair is not mergeable (size cap reached or
    /// buddy currently has a different granularity).
    fn merge(&mut self, base: u64, dev: &mut NvmDevice) -> bool {
        let e = self.imt.entry(base);
        if e.q() >= self.cfg.max_granularity {
            return false;
        }
        let nq = self.nq(e);
        let buddy = base ^ nq;
        // A buddy can never be *larger*: a larger region is aligned to its
        // own size and would cover `base` too, contradicting `base`'s entry.
        // It can be smaller when earlier merges were applied unevenly; in
        // that case level the buddy up first by merging its pieces ("SAWL
        // chooses the closest non-merged logical location ... and merges
        // them", §3.2), then merge the equal-size pair.
        loop {
            let eb = self.imt.entry(buddy);
            debug_assert!(eb.q_log2 <= e.q_log2, "oversized buddy at {buddy}");
            if eb.q_log2 == e.q_log2 {
                break;
            }
            if !self.merge(self.base_of(buddy, eb), dev) {
                return false;
            }
        }
        // Re-fetch both entries: the buddy-leveling merges above may have
        // physically relocated this region while evacuating target blocks.
        let e = self.imt.entry(base);
        let eb = self.imt.entry(buddy);
        debug_assert_eq!(self.base_of(buddy, eb), buddy);

        let q_log2 = e.q_log2;
        let new_q_log2 = q_log2 + 1;
        let my_block = e.prn(); // Q-sized block index
        let other_half = my_block ^ 1;
        let target2q = my_block >> 1; // 2Q-sized block index
        let b_block = eb.prn();
        let new_base = base & !(2 * nq - 1);
        let new_key = self.rng.random::<u64>() & ((e.q() * 2) - 1);

        if b_block != other_half {
            // Evacuate the other half of the target into B's old block.
            self.collect_occupants(other_half * nq, nq);
            let displaced = std::mem::take(&mut self.scratch_regions);
            for &(dbase, dentry) in &displaced {
                debug_assert_ne!(dbase, base);
                debug_assert_ne!(dbase, buddy);
                let dshift = u32::from(dentry.q_log2) - self.p_log2;
                let dphys = dentry.prn() << dshift;
                let offset = dphys - other_half * nq;
                let new_prn = (b_block * nq + offset) >> dshift;
                self.set_region(dbase, new_prn, dentry.key(), dentry.q_log2, dev);
            }
            self.scratch_regions = displaced;
            // The evacuated data lands in B's old block: Q line writes.
            self.charge_block(b_block * nq, nq, dev);
        }
        // Stale CMT entries for the two halves disappear; the merged entry
        // is inserted fresh (merges are triggered for cached regions).
        self.cmt.remove(base);
        self.cmt.remove(buddy);
        self.set_region(new_base, target2q, new_key, new_q_log2, dev);
        self.cmt.insert(new_base, self.imt.entry(new_base));
        // The merged region's 2Q lines are rewritten under the new key.
        self.charge_block(target2q * 2 * nq, 2 * nq, dev);

        // Fold the write counters into the new base.
        let merged_ctr = self.ctr[base as usize].saturating_add(self.ctr[buddy as usize]);
        self.ctr[base as usize] = 0;
        self.ctr[buddy as usize] = 0;
        self.ctr[new_base as usize] = merged_ctr;

        self.stats.merges += 1;
        self.stats.region_count -= 1;
        true
    }

    /// §3.2 region-split of the region at `base` into two halves. Pure
    /// metadata: zero data-line writes (the tests assert this). Returns
    /// `false` at the minimum granularity.
    fn split(&mut self, base: u64, dev: &mut NvmDevice) -> bool {
        let e = self.imt.entry(base);
        if u32::from(e.q_log2) <= self.p_log2 {
            return false;
        }
        let nq = self.nq(e);
        let half = nq / 2;
        let key = e.key();
        let k_msb = key >> (e.q_log2 - 1);
        let k_low = key & ((e.q() / 2) - 1);
        let child_q = e.q_log2 - 1;
        self.cmt.remove(base);
        for h in 0..2u64 {
            let child_base = base + h * half;
            // "The new physical address of the sub-regions is obtained by
            // the region address XORing with the MSB of the offset
            // parameter" — in D-packing terms the child prn extends the
            // parent prn by (h ^ key MSB).
            let child_prn = (e.prn() << 1) | (h ^ k_msb);
            self.set_region(child_base, child_prn, k_low, child_q, dev);
            self.cmt.insert(child_base, self.imt.entry(child_base));
        }
        // Halve the counter across the children.
        let c = self.ctr[base as usize];
        self.ctr[base as usize] = c / 2;
        self.ctr[(base + half) as usize] = c / 2;

        self.stats.splits += 1;
        self.stats.region_count += 1;
        true
    }

    // ---- request path ---------------------------------------------------

    /// Advance the monitor after each request; sample and adjust the
    /// target granularity when due (regions follow lazily, on access).
    fn tick(&mut self) {
        self.requests += 1;
        if self.requests % self.monitor.sample_interval() != 0 {
            return;
        }
        let first = self.cmt.hits_first_half();
        let second = self.cmt.hits_second_half();
        let misses = self.cmt.misses();
        let inputs = MonitorInputs {
            hits_first_half: first - self.last_first,
            hits_second_half: second - self.last_second,
            misses: misses - self.last_misses,
        };
        let interval_total = inputs.hits_first_half + inputs.hits_second_half + inputs.misses;
        let instant_rate = if interval_total == 0 {
            0.0
        } else {
            (inputs.hits_first_half + inputs.hits_second_half) as f64 / interval_total as f64
        };
        self.last_first = first;
        self.last_second = second;
        self.last_misses = misses;

        let decision = self.monitor.on_sample(inputs);
        self.history.push(Sample {
            requests: self.requests,
            windowed_hit_rate: self.monitor.windowed_hit_rate().unwrap_or(0.0),
            instant_hit_rate: instant_rate,
            cached_region_size: self.cached_region_size(),
            global_region_size: self.global_region_size(),
        });
        let max_q = self.cfg.max_granularity.trailing_zeros() as u8;
        match decision {
            Decision::Merge if self.cfg.enable_merge => {
                self.stats.merge_decisions += 1;
                if self.target_q_log2 < max_q {
                    self.target_q_log2 += 1;
                } else {
                    // Already at the cap: a no-op decision must not stall
                    // adaptation for a settling window.
                    self.monitor.cancel_cooldown();
                }
            }
            Decision::Split if self.cfg.enable_split => {
                self.stats.split_decisions += 1;
                if self.target_q_log2 > self.p_log2 as u8 {
                    self.target_q_log2 -= 1;
                } else {
                    self.monitor.cancel_cooldown();
                }
            }
            _ => {}
        }
    }

    // ---- test support ---------------------------------------------------

    /// Verify internal invariants: region alignment/identical-entry runs,
    /// owner-map consistency and injective translation. O(data lines);
    /// test-only.
    pub fn check_invariants(&self) {
        // Regions are aligned runs of identical entries.
        let mut g = 0;
        let mut region_count = 0u64;
        while g < self.granules {
            let e = self.imt.entry(g);
            let nq = self.nq(e);
            assert_eq!(g & (nq - 1), 0, "region at granule {g} misaligned");
            for j in 0..nq {
                assert_eq!(self.imt.entry(g + j), e, "entry run broken at {}", g + j);
            }
            region_count += 1;
            g += nq;
        }
        assert_eq!(region_count, self.stats.region_count, "region count drifted");
        // Owner is the inverse of the granule-level mapping.
        for l in 0..self.granules {
            let e = self.imt.entry(l);
            let base = self.base_of(l, e);
            let j = l - base;
            let key_g = e.key() >> self.p_log2;
            let phys = (e.prn() << (u32::from(e.q_log2) - self.p_log2)) + (j ^ key_g);
            assert_eq!(
                u64::from(self.owner[phys as usize]),
                l,
                "owner map wrong at physical granule {phys}"
            );
        }
        // Line-level translation is injective.
        let mut seen = vec![false; self.cfg.data_lines as usize];
        for la in 0..self.cfg.data_lines {
            let pa = self.imt.translate(la) as usize;
            assert!(!seen[pa], "collision at pa {pa}");
            seen[pa] = true;
        }
    }
}

impl WearLeveler for Sawl {
    fn name(&self) -> &'static str {
        "sawl"
    }

    fn logical_lines(&self) -> u64 {
        self.cfg.data_lines
    }

    #[inline]
    fn translate(&self, la: La) -> Pa {
        self.imt.translate(la)
    }

    fn write(&mut self, la: La, dev: &mut NvmDevice) -> Pa {
        let g = la >> self.p_log2;
        let e = self.resolve(g, dev);
        let pa = e.translate(la);
        dev.write(pa);
        let base = self.base_of(g, e);
        let c = &mut self.ctr[base as usize];
        *c += 1;
        if u64::from(*c) >= self.cfg.swap_period * e.q() {
            self.exchange(base, dev);
        }
        self.tick();
        pa
    }

    fn read(&mut self, la: La, dev: &mut NvmDevice) -> Pa {
        let g = la >> self.p_log2;
        let e = self.resolve(g, dev);
        let pa = e.translate(la);
        dev.read(pa);
        self.tick();
        pa
    }

    fn onchip_bits(&self) -> u64 {
        self.cmt.capacity() as u64 * self.cfg.entry_bits() + self.gtd.onchip_bits()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn small_cfg() -> SawlConfig {
        SawlConfig {
            data_lines: 1 << 12,
            initial_granularity: 4,
            max_granularity: 64,
            cmt_entries: 64,
            swap_period: 4,
            sample_interval: 500,
            observation_window: 2_000,
            settling_window: 1_000,
            ..Default::default()
        }
    }

    fn make(cfg: SawlConfig) -> (Sawl, NvmDevice) {
        let s = Sawl::new(cfg);
        let dev = NvmDevice::new(
            sawl_nvm::NvmConfig::builder()
                .lines(s.required_physical_lines())
                .banks(1)
                .endurance(u32::MAX)
                .spare_shift(6)
                .build()
                .unwrap(),
        );
        (s, dev)
    }

    #[test]
    fn starts_identity_with_invariants() {
        let (s, _) = make(small_cfg());
        for la in [0u64, 1, 100, 4095] {
            assert_eq!(s.translate(la), la);
        }
        s.check_invariants();
        assert_eq!(s.stats().region_count, 1 << 10);
    }

    #[test]
    fn split_is_free_and_preserves_translation() {
        let (mut s, mut dev) = make(small_cfg());
        // Build an 8-line region by merging granules 0 and 1.
        assert!(s.merge(0, &mut dev));
        s.check_invariants();
        let before: Vec<u64> = (0..16).map(|la| s.translate(la)).collect();
        let writes_before = dev.wear().total_writes;
        let reads_before = dev.wear().reads;
        assert!(s.split(0, &mut dev));
        s.check_invariants();
        // Pure metadata: only translation-line writes, no data-line writes.
        let data_writes: u64 = dev.write_counts()[..1 << 12]
            .iter()
            .map(|&c| u64::from(c))
            .sum();
        let after: Vec<u64> = (0..16).map(|la| s.translate(la)).collect();
        assert_eq!(before, after, "split moved data");
        // All post-merge data writes happened during the merge, none in the
        // split: the merge writes 2Q = 8 data lines (buddy was adjacent).
        assert_eq!(data_writes, 8);
        let _ = (writes_before, reads_before);
    }

    #[test]
    fn merge_makes_one_region_and_counts_cost() {
        let (mut s, mut dev) = make(small_cfg());
        let regions_before = s.stats().region_count;
        assert!(s.merge(0, &mut dev));
        assert_eq!(s.stats().region_count, regions_before - 1);
        assert_eq!(s.stats().merges, 1);
        let e0 = s.imt.entry(0);
        let e1 = s.imt.entry(1);
        assert_eq!(e0, e1, "merged granules must share the entry");
        assert_eq!(e0.q(), 8);
        s.check_invariants();
    }

    #[test]
    fn merge_respects_max_granularity() {
        let mut cfg = small_cfg();
        cfg.max_granularity = 8;
        let (mut s, mut dev) = make(cfg);
        assert!(s.merge(0, &mut dev)); // 4 -> 8
        assert!(!s.merge(0, &mut dev)); // capped
        s.check_invariants();
    }

    #[test]
    fn split_respects_min_granularity() {
        let (mut s, mut dev) = make(small_cfg());
        assert!(!s.split(0, &mut dev), "must not split below P");
    }

    #[test]
    fn merge_with_displacement_preserves_data_addressability() {
        // Shadow map: write distinct "values" (la) before the merge, check
        // every la still translates to a unique pa holding its value.
        let (mut s, mut dev) = make(small_cfg());
        // Relocate granule 1's region away so the merge needs displacement.
        s.exchange(1, &mut dev);
        s.check_invariants();
        let e0 = s.imt.entry(0);
        let e1 = s.imt.entry(1);
        if e0.q_log2 == e1.q_log2 {
            let mut shadow: HashMap<u64, u64> = HashMap::new();
            for la in 0..64 {
                shadow.insert(la, s.translate(la));
            }
            assert!(s.merge(0, &mut dev));
            s.check_invariants();
            // After the merge, translation changed but stays injective and
            // total (check_invariants asserts it); the shadow map documents
            // which lines moved.
            let moved = (0..64).filter(|&la| s.translate(la) != shadow[&la]).count();
            assert!(moved > 0);
        }
    }

    #[test]
    fn exchange_relocates_and_keeps_invariants() {
        let (mut s, mut dev) = make(small_cfg());
        let before = s.translate(0);
        s.exchange(0, &mut dev);
        s.check_invariants();
        assert_eq!(s.stats().exchanges, 1);
        // With 1024 blocks the re-key-in-place fallback is vanishingly
        // unlikely; the region should have moved.
        let _ = before; // (either way invariants hold)
        let ov = dev.wear().overhead_writes;
        assert!(ov >= 8, "exchange cost {ov} writes");
    }

    #[test]
    fn write_triggers_exchange_at_threshold() {
        let (mut s, mut dev) = make(small_cfg());
        let threshold = s.cfg.swap_period * 4; // Q = P = 4
        for _ in 0..threshold {
            s.write(0, &mut dev);
        }
        assert_eq!(s.stats().exchanges, 1);
        s.check_invariants();
    }

    #[test]
    fn invariants_hold_under_heavy_mixed_operations() {
        let (mut s, mut dev) = make(small_cfg());
        let mut x = 0xFEEDu64;
        for round in 0..20 {
            for _ in 0..2_000 {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                let la = x % (1 << 12);
                if x & 3 == 0 {
                    s.read(la, &mut dev);
                } else {
                    s.write(la, &mut dev);
                }
            }
            // Interleave explicit merges and splits of random regions.
            let g = (x >> 5) % (1 << 10);
            let e = s.imt.entry(g);
            let base = s.base_of(g, e);
            if round % 2 == 0 {
                s.merge(base, &mut dev);
            } else {
                s.split(base, &mut dev);
            }
            s.check_invariants();
        }
        assert!(s.stats().exchanges > 0);
    }

    #[test]
    fn low_hit_rate_causes_merges_and_raises_hit_rate() {
        // Uniform traffic over the whole space with a tiny CMT: hit rate
        // starts terrible; merging to max granularity must lift it.
        let cfg = SawlConfig {
            data_lines: 1 << 14,
            initial_granularity: 4,
            max_granularity: 256,
            cmt_entries: 128,
            swap_period: 1 << 30, // isolate the adaptation effect
            sample_interval: 2_000,
            observation_window: 8_000,
            settling_window: 4_000,
            ..Default::default()
        };
        let (mut s, mut dev) = make(cfg);
        let mut x = 5u64;
        let mut early_hits = 0u64;
        let early_n = 20_000u64;
        for i in 0..300_000u64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let h0 = s.cmt.hits();
            s.write(x % (1 << 14), &mut dev);
            if i < early_n && s.cmt.hits() > h0 {
                early_hits += 1;
            }
        }
        assert!(s.stats().merges > 0, "no merges happened");
        let early_rate = early_hits as f64 / early_n as f64;
        // Hit rate over the last window must beat the cold-start rate.
        let late_rate = s
            .history()
            .samples()
            .last()
            .map(|smp| smp.windowed_hit_rate)
            .unwrap_or(0.0);
        assert!(
            late_rate > early_rate + 0.2,
            "adaptation didn't help: early {early_rate}, late {late_rate}"
        );
        assert!(s.cached_region_size() > 4.0);
        s.check_invariants();
    }

    #[test]
    fn high_hit_rate_with_hot_head_causes_splits() {
        // First grow regions, then hammer a tiny hot set so the hit rate
        // pins near 100% with all hits in the MRU half -> splits.
        let cfg = SawlConfig {
            data_lines: 1 << 14,
            initial_granularity: 4,
            max_granularity: 256,
            cmt_entries: 128,
            swap_period: 1 << 30,
            sample_interval: 1_000,
            observation_window: 4_000,
            settling_window: 2_000,
            ..Default::default()
        };
        let (mut s, mut dev) = make(cfg);
        // Manually merge the first regions up to 64 lines.
        for _ in 0..4 {
            let e = s.imt.entry(0);
            let base = s.base_of(0, e);
            s.merge(base, &mut dev);
        }
        s.check_invariants();
        let mut x = 11u64;
        for _ in 0..100_000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            s.write(x % 256, &mut dev); // tiny hot set
        }
        assert!(s.stats().splits > 0, "no splits despite pinned hit rate");
        s.check_invariants();
    }

    #[test]
    fn lazy_merge_converges_touched_regions_only() {
        let (mut s, mut dev) = make(small_cfg());
        // Force the target up two levels without any monitor involvement.
        s.target_q_log2 = 4; // Q = 16 lines = 4 granules
        // Touch only the first 64 lines.
        for _ in 0..3 {
            for la in 0..64u64 {
                s.write(la, &mut dev);
            }
        }
        // Touched regions converged to the target...
        for g in 0..16u64 {
            assert_eq!(s.imt.entry(g).q(), 16, "granule {g} did not converge");
        }
        // ...while untouched regions stayed at the initial granularity.
        let untouched = s.imt.entry(512);
        assert_eq!(untouched.q(), 4, "cold region merged without being touched");
        s.check_invariants();
    }

    #[test]
    fn lazy_split_follows_target_down() {
        // Huge swap period so exchange costs don't pollute the split-cost
        // measurement below.
        let cfg = SawlConfig { swap_period: 1 << 30, ..small_cfg() };
        let (mut s, mut dev) = make(cfg);
        s.target_q_log2 = 4;
        for _ in 0..3 {
            for la in 0..64u64 {
                s.write(la, &mut dev);
            }
        }
        assert_eq!(s.imt.entry(0).q(), 16);
        // Lower the target; accesses shrink regions one level at a time.
        s.target_q_log2 = 2;
        let before_overhead = dev.wear().overhead_writes;
        for _ in 0..3 {
            for la in 0..64u64 {
                s.write(la, &mut dev);
            }
        }
        for g in 0..16u64 {
            assert_eq!(s.imt.entry(g).q(), 4, "granule {g} did not split back");
        }
        // Splits are metadata-only: overhead grew only by translation-line
        // writes (GTD), bounded well below one line write per data line.
        let split_overhead = dev.wear().overhead_writes - before_overhead;
        assert!(split_overhead < 64, "split cost {split_overhead} writes");
        s.check_invariants();
    }

    #[test]
    fn one_adaptation_level_per_access() {
        let (mut s, mut dev) = make(small_cfg());
        s.target_q_log2 = 6; // Q = 64, four levels above P
        s.write(0, &mut dev);
        assert_eq!(s.imt.entry(0).q(), 8, "first touch must merge exactly one level");
        s.write(0, &mut dev);
        assert_eq!(s.imt.entry(0).q(), 16);
        s.write(0, &mut dev);
        s.write(0, &mut dev);
        assert_eq!(s.imt.entry(0).q(), 64);
        s.write(0, &mut dev);
        assert_eq!(s.imt.entry(0).q(), 64, "must stop at the target");
        s.check_invariants();
    }

    #[test]
    fn disabled_mechanisms_keep_granularity_fixed() {
        let mut cfg = small_cfg();
        cfg.enable_merge = false;
        let (mut s, mut dev) = make(cfg);
        s.target_q_log2 = 5;
        for _ in 0..200 {
            s.write(0, &mut dev);
        }
        assert_eq!(s.imt.entry(0).q(), 4, "merge happened despite enable_merge = false");
    }

    #[test]
    fn history_records_samples() {
        let (mut s, mut dev) = make(small_cfg());
        for la in 0..5_000u64 {
            s.write(la % (1 << 12), &mut dev);
        }
        assert_eq!(s.history().len(), (5_000 / 500) as usize);
        let last = *s.history().samples().last().unwrap();
        assert_eq!(last.requests, 5_000);
        assert!(last.cached_region_size >= 4.0);
    }

    #[test]
    fn translation_line_wear_is_charged() {
        let cfg = SawlConfig { swap_period: 1, ..small_cfg() };
        let (mut s, mut dev) = make(cfg);
        for _ in 0..10_000 {
            s.write(0, &mut dev);
        }
        let base = s.layout().translation_base() as usize;
        let t_wear: u64 =
            dev.write_counts()[base..].iter().map(|&c| u64::from(c)).sum();
        assert!(t_wear > 0, "IMT updates must wear translation lines");
    }
}
