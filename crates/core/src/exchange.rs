//! The exchange policy: region-counter bookkeeping, XOR-key rotation and
//! displaced-region exchange (§2.1's PCM-S machinery at SAWL's variable
//! granularity).
//!
//! SAWL "adopts PCM-S in the data-exchange module": after `swap_period × Q`
//! demand writes to a region it is relocated to a uniformly random
//! equal-size block, under a fresh intra-region XOR key, displacing the
//! block's occupants back into the vacated space (2·Q line writes, the
//! PCM-S cost). The counter/threshold machinery and key drawing are shared
//! with the fixed-granularity schemes via
//! [`sawl_algos::exchange`] — this module adds what is specific to SAWL:
//! counters indexed by *region base granule* that must be folded on merge
//! and halved on split, target-block selection that skips blocks owned by
//! larger regions, and the displacement dance against the
//! [mapping tier](crate::mapping).
//!
//! The policy also owns the engine's RNG: every random draw after
//! construction (exchange targets, exchange keys, merge keys) comes from
//! here, keeping the random stream in one place.

use rand::rngs::SmallRng;
use rand::Rng;

use sawl_algos::exchange::{draw_key, SwapCounters};
use sawl_nvm::NvmDevice;
use sawl_tiered::journal::RegionUpdate;

use crate::mapping::{MappingTier, TieredMapping};

/// A fully planned exchange: every region-descriptor update it will apply
/// (journal-ready) plus the block geometry the data-movement charges need.
#[derive(Debug, Clone)]
pub struct ExchangePlan {
    /// Displacement updates for the target block's occupants (empty for a
    /// re-key in place), followed by the moved region's own update — apply
    /// order, and exactly what the engine journals.
    pub updates: Vec<RegionUpdate>,
    /// The region's current physical block index.
    pub my_block: u64,
    /// Chosen target block index (`== my_block` for a re-key in place).
    pub target: u64,
    /// Granules per block at the region's granularity.
    pub nq: u64,
}

/// Narrow interface of the exchange subsystem: wear-triggered relocation
/// plus the counter bookkeeping that keeps the swapping period meaningful
/// across granularity changes.
pub trait ExchangePolicy {
    /// Count one demand write to the region at `base` (of `region_lines`
    /// lines); `true` when the region is due for an exchange.
    fn record_write(&mut self, base: u64, region_lines: u64) -> bool;

    /// Relocate the region at `base` to a random equal-size block,
    /// displacing that block's occupants into the vacated space.
    fn exchange(&mut self, mapping: &mut TieredMapping, base: u64, dev: &mut NvmDevice);

    /// Draw a fresh XOR key for a region of `region_lines` lines (used by
    /// the engine when a merge re-keys the combined region).
    fn draw_region_key(&mut self, region_lines: u64) -> u64;

    /// Fold the two merging regions' counters into the merged base.
    fn on_merge(&mut self, base: u64, buddy: u64, new_base: u64);

    /// Halve the splitting region's counter across its children.
    fn on_split(&mut self, base: u64, half: u64);

    /// Exchanges performed so far.
    fn exchanges(&self) -> u64;
}

/// The concrete PCM-S-style exchange policy over granule-indexed counters.
#[derive(Debug, Clone)]
pub struct RegionExchange {
    /// Demand-write counters indexed by region base granule.
    swaps: SwapCounters,
    rng: SmallRng,
    exchanges: u64,
}

impl RegionExchange {
    /// Counters for `granules` slots with the given writes-per-line
    /// swapping period; `rng` continues the engine's seeded stream.
    pub fn new(granules: u64, swap_period: u64, rng: SmallRng) -> Self {
        Self { swaps: SwapCounters::new(granules as usize, swap_period), rng, exchanges: 0 }
    }

    /// Writes to the region at `base` until the one that triggers its
    /// exchange, inclusive (`region_lines` = the region's current size).
    #[inline]
    pub fn until_trigger(&self, base: u64, region_lines: u64) -> u64 {
        self.swaps.until_trigger(base as usize, region_lines)
    }

    /// Count `k` writes to the region at `base` known not to reach its
    /// exchange threshold (run batching).
    #[inline]
    pub fn note_writes(&mut self, base: u64, k: u64) {
        self.swaps.add(base as usize, k);
    }

    /// Plan the exchange of the region at `base`: draw the target block and
    /// the fresh key (consuming the same RNG values, in the same order, as
    /// the pre-journal implementation) and compute every region update the
    /// operation will write, without touching the mapping or the device.
    pub fn plan(&mut self, m: &TieredMapping, base: u64) -> ExchangePlan {
        let e = m.entry(base);
        let nq = m.nq(e);
        let q_log2 = e.q_log2;
        let total_blocks = m.granules() / nq;
        let my_block = e.prn();
        // Find a target block not owned by a larger region (a handful of
        // retries suffices; larger regions are rare).
        let mut target = my_block;
        for _ in 0..16 {
            let t = self.rng.random_range(0..total_blocks);
            if m.occupant_q_log2(t * nq) <= q_log2 {
                target = t;
                break;
            }
        }
        let new_key = draw_key(&mut self.rng, e.q());
        let mut updates = if target == my_block {
            Vec::new()
        } else {
            // Displace the target block's occupants into our old block,
            // preserving their offsets within the block.
            m.plan_displacement(target * nq, nq, my_block * nq)
        };
        updates.push(RegionUpdate { base, prn: target, key: new_key, q_log2 });
        ExchangePlan { updates, my_block, target, nq }
    }

    /// Apply a planned exchange: write the region updates in plan order and
    /// charge the data movement. Device traffic is identical to the
    /// pre-journal single-call implementation.
    pub fn apply(&mut self, m: &mut TieredMapping, plan: &ExchangePlan, dev: &mut NvmDevice) {
        let base = plan.updates.last().expect("plan has the moved region's update").base;
        if plan.target == plan.my_block {
            // Re-key in place: every line of the block is rewritten.
            m.apply_update(&plan.updates[plan.updates.len() - 1], dev);
            m.charge_block(plan.my_block * plan.nq, plan.nq, dev);
        } else {
            for u in &plan.updates {
                m.apply_update(u, dev);
            }
            // Data movement: both blocks fully rewritten.
            m.charge_block(plan.target * plan.nq, plan.nq, dev);
            m.charge_block(plan.my_block * plan.nq, plan.nq, dev);
        }
        self.swaps.reset(base as usize);
        self.exchanges += 1;
    }

    /// Crash recovery: the demand-write counters live in volatile SRAM, so
    /// every region restarts its swapping-period cadence from zero.
    pub fn reset_after_crash(&mut self) {
        self.swaps.clear();
    }

    /// Checkpoint the policy: counters, the engine's RNG stream and the
    /// exchange tally. Unlike crash recovery, resume keeps the counters so
    /// the swapping cadence continues exactly.
    pub fn ckpt_save(&self, w: &mut sawl_ckpt::Writer) {
        self.swaps.ckpt_save(w);
        w.put_rng(self.rng.state());
        w.put_u64(self.exchanges);
    }

    /// Restore state saved by [`ckpt_save`](Self::ckpt_save) into a policy
    /// built from the same spec.
    pub fn ckpt_restore(
        &mut self,
        r: &mut sawl_ckpt::Reader<'_>,
    ) -> Result<(), sawl_ckpt::CkptError> {
        self.swaps.ckpt_restore(r)?;
        self.rng = SmallRng::from_state(r.get_rng()?);
        self.exchanges = r.get_u64()?;
        Ok(())
    }
}

impl ExchangePolicy for RegionExchange {
    #[inline]
    fn record_write(&mut self, base: u64, region_lines: u64) -> bool {
        self.swaps.record_write(base as usize, region_lines)
    }

    fn exchange(&mut self, m: &mut TieredMapping, base: u64, dev: &mut NvmDevice) {
        let plan = self.plan(m, base);
        self.apply(m, &plan, dev);
    }

    #[inline]
    fn draw_region_key(&mut self, region_lines: u64) -> u64 {
        draw_key(&mut self.rng, region_lines)
    }

    fn on_merge(&mut self, base: u64, buddy: u64, new_base: u64) {
        self.swaps.fold_into(base as usize, buddy as usize, new_base as usize);
    }

    fn on_split(&mut self, base: u64, half: u64) {
        self.swaps.halve_into(base as usize, half as usize);
    }

    fn exchanges(&self) -> u64 {
        self.exchanges
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use sawl_nvm::NvmConfig;

    use crate::config::SawlConfig;

    fn make() -> (TieredMapping, RegionExchange, NvmDevice) {
        let cfg = SawlConfig {
            data_lines: 1 << 10,
            initial_granularity: 4,
            cmt_entries: 16,
            swap_period: 4,
            ..Default::default()
        };
        let m = TieredMapping::new(&cfg, 0xBEEF);
        let x = RegionExchange::new(m.granules(), cfg.swap_period, SmallRng::seed_from_u64(42));
        let dev = NvmDevice::new(
            NvmConfig::builder()
                .lines(m.required_physical_lines())
                .banks(1)
                .endurance(u32::MAX)
                .spare_shift(6)
                .build()
                .unwrap(),
        );
        (m, x, dev)
    }

    #[test]
    fn record_write_fires_at_period_times_q() {
        let (_, mut x, _) = make();
        for _ in 0..15 {
            assert!(!x.record_write(0, 4));
        }
        assert!(x.record_write(0, 4), "threshold is swap_period * Q = 16");
    }

    #[test]
    fn exchange_relocates_and_keeps_mapping_consistent() {
        let (mut m, mut x, mut dev) = make();
        x.exchange(&mut m, 0, &mut dev);
        assert_eq!(x.exchanges(), 1);
        let _ = m.check_consistency();
        // Cost: the region's block plus (usually) the displaced partner's.
        assert!(dev.wear().overhead_writes >= 4, "exchange must rewrite data lines");
    }

    #[test]
    fn counters_survive_merge_and_split_transitions() {
        let (_, mut x, _) = make();
        for _ in 0..10 {
            x.record_write(0, 4);
        }
        for _ in 0..6 {
            x.record_write(1, 4);
        }
        x.on_merge(0, 1, 0);
        // 16 accumulated writes on the merged slot: the very next write at
        // the doubled granularity (Q=8, threshold 32) keeps counting from
        // there rather than restarting.
        for _ in 0..15 {
            assert!(!x.record_write(0, 8));
        }
        assert!(x.record_write(0, 8));
        // A split shares the 32 accumulated writes between the children:
        // each inherits 16, so at Q=4 (threshold 16) the next write to
        // either child fires immediately.
        x.on_split(0, 1);
        assert!(x.record_write(0, 4));
        assert!(x.record_write(1, 4));
    }

    #[test]
    fn repeated_exchanges_stay_consistent() {
        let (mut m, mut x, mut dev) = make();
        for base in [0u64, 8, 16, 0, 32, 8] {
            x.exchange(&mut m, base, &mut dev);
        }
        assert_eq!(x.exchanges(), 6);
        let _ = m.check_consistency();
    }
}
