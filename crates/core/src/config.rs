//! SAWL configuration.
//!
//! Defaults follow the paper: initial granularity P = 4 lines (§4.1),
//! merge threshold 90%, split threshold 95%, sub-queue split rule 99%
//! (§4.1), hit-rate sampling every 100 000 requests with observation and
//! settling windows of 2^22 requests (the values trained in §4.2), and a
//! swapping period of 128 (§4.3/§4.4).

use std::error::Error;
use std::fmt;

use serde::{Deserialize, Serialize};

/// A structural problem in a [`SawlConfig`], surfaced as a value instead of
/// a panic so spec-driven runs (JSON scenarios, CLI) can report it and exit
/// cleanly.
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigError {
    /// `data_lines` is not a power of two.
    DataLinesNotPowerOfTwo(u64),
    /// A granularity is not a power of two.
    GranularityNotPowerOfTwo { initial: u64, max: u64 },
    /// The `P <= max granularity <= data lines` chain is violated.
    GranularityOutOfRange { initial: u64, max: u64, data_lines: u64 },
    /// The CMT cannot hold its two LRU halves.
    CmtTooSmall(usize),
    /// A period (swap/GTD/sample) is zero.
    ZeroPeriod(&'static str),
    /// The observation window is shorter than one sample.
    ObservationWindowTooShort { window: u64, sample_interval: u64 },
    /// Thresholds must satisfy `0 <= merge < split <= 1`.
    BadThresholds { merge: f64, split: f64 },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::DataLinesNotPowerOfTwo(n) => {
                write!(f, "data_lines must be a power of two, got {n}")
            }
            Self::GranularityNotPowerOfTwo { initial, max } => {
                write!(f, "granularities must be powers of two, got P={initial}, max={max}")
            }
            Self::GranularityOutOfRange { initial, max, data_lines } => write!(
                f,
                "need P <= max granularity <= data lines, got P={initial}, max={max}, \
                 data_lines={data_lines}"
            ),
            Self::CmtTooSmall(n) => write!(f, "CMT needs at least two entries, got {n}"),
            Self::ZeroPeriod(which) => write!(f, "{which} must be non-zero"),
            Self::ObservationWindowTooShort { window, sample_interval } => write!(
                f,
                "observation window ({window}) must cover at least one sample \
                 interval ({sample_interval})"
            ),
            Self::BadThresholds { merge, split } => write!(
                f,
                "thresholds must satisfy 0 <= merge < split <= 1, got merge={merge}, \
                 split={split}"
            ),
        }
    }
}

impl Error for ConfigError {}

/// All tunables of a SAWL instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SawlConfig {
    /// User data lines (power of two).
    pub data_lines: u64,
    /// Initial (and minimum) wear-leveling granularity P, in lines.
    pub initial_granularity: u64,
    /// Maximum granularity a merge may create, in lines.
    pub max_granularity: u64,
    /// CMT capacity in entries.
    pub cmt_entries: usize,
    /// Writes per line between region exchanges (PCM-S swapping period).
    pub swap_period: u64,
    /// Translation-line writes per GTD refresh step.
    pub gtd_period: u64,
    /// Requests between hit-rate samples (paper: 100 000).
    pub sample_interval: u64,
    /// Observation window SOW in requests (paper: 2^22).
    pub observation_window: u64,
    /// Settling window SSW in requests (paper: 2^22).
    pub settling_window: u64,
    /// Merge when the windowed hit rate stays below this (paper: 0.90).
    pub merge_threshold: f64,
    /// Split when the windowed hit rate stays above this (paper: 0.95) and
    /// the split-imbalance rule holds.
    pub split_threshold: f64,
    /// "If the hit ratio of the first queue OR the hit ratio of the second
    /// queue >= 99%, the NVM system splits the region for endurance."
    pub subqueue_split_threshold: f64,
    /// Fraction of hits in the first LRU half that counts as "far larger"
    /// than the second half (the paper leaves the margin unspecified; 0.90
    /// is our calibration, swept in the ablation bench).
    pub first_half_dominance: f64,
    /// Enable region-merge operations (disable for the mechanism ablation).
    pub enable_merge: bool,
    /// Enable region-split operations (disable for the mechanism ablation).
    pub enable_split: bool,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SawlConfig {
    fn default() -> Self {
        Self {
            data_lines: 1 << 16,
            initial_granularity: 4,
            max_granularity: 64,
            cmt_entries: 1024,
            swap_period: 128,
            gtd_period: 32,
            sample_interval: 100_000,
            observation_window: 1 << 22,
            settling_window: 1 << 22,
            merge_threshold: 0.90,
            split_threshold: 0.95,
            subqueue_split_threshold: 0.99,
            first_half_dominance: 0.90,
            enable_merge: true,
            enable_split: true,
            seed: 0x5A31_A110_C8ED,
        }
    }
}

impl SawlConfig {
    /// Validate internal consistency.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if !self.data_lines.is_power_of_two() {
            return Err(ConfigError::DataLinesNotPowerOfTwo(self.data_lines));
        }
        if !self.initial_granularity.is_power_of_two() || !self.max_granularity.is_power_of_two() {
            return Err(ConfigError::GranularityNotPowerOfTwo {
                initial: self.initial_granularity,
                max: self.max_granularity,
            });
        }
        if self.initial_granularity > self.max_granularity || self.max_granularity > self.data_lines
        {
            return Err(ConfigError::GranularityOutOfRange {
                initial: self.initial_granularity,
                max: self.max_granularity,
                data_lines: self.data_lines,
            });
        }
        if self.cmt_entries < 2 {
            return Err(ConfigError::CmtTooSmall(self.cmt_entries));
        }
        if self.swap_period == 0 {
            return Err(ConfigError::ZeroPeriod("swap_period"));
        }
        if self.gtd_period == 0 {
            return Err(ConfigError::ZeroPeriod("gtd_period"));
        }
        if self.sample_interval == 0 {
            return Err(ConfigError::ZeroPeriod("sample_interval"));
        }
        if self.observation_window < self.sample_interval {
            return Err(ConfigError::ObservationWindowTooShort {
                window: self.observation_window,
                sample_interval: self.sample_interval,
            });
        }
        let merge_ok = (0.0..=1.0).contains(&self.merge_threshold);
        let split_ok = (0.0..=1.0).contains(&self.split_threshold);
        if !merge_ok || !split_ok || self.merge_threshold >= self.split_threshold {
            return Err(ConfigError::BadThresholds {
                merge: self.merge_threshold,
                split: self.split_threshold,
            });
        }
        Ok(())
    }

    /// Bits per CMT entry (tag + wlg + packed D), for byte-budget sizing.
    pub fn entry_bits(&self) -> u64 {
        let lrn_bits = 64 - (self.data_lines / self.initial_granularity - 1).leading_zeros() as u64;
        let d_bits = 64 - (self.data_lines - 1).leading_zeros() as u64;
        let wlg_bits = 6;
        lrn_bits + d_bits + wlg_bits
    }

    /// Set the CMT size from an SRAM byte budget.
    pub fn with_cache_bytes(mut self, bytes: u64) -> Self {
        self.cmt_entries = ((bytes * 8) / self.entry_bits()).max(2) as usize;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        SawlConfig::default().validate().unwrap();
    }

    #[test]
    fn rejects_odd_data_lines() {
        let err = SawlConfig { data_lines: 1000, ..Default::default() }.validate().unwrap_err();
        assert_eq!(err, ConfigError::DataLinesNotPowerOfTwo(1000));
        assert!(err.to_string().contains("power of two"));
    }

    #[test]
    fn rejects_inverted_thresholds() {
        let err = SawlConfig { merge_threshold: 0.99, split_threshold: 0.95, ..Default::default() }
            .validate()
            .unwrap_err();
        assert_eq!(err, ConfigError::BadThresholds { merge: 0.99, split: 0.95 });
        assert!(err.to_string().contains("merge < split"));
    }

    #[test]
    fn reports_each_defect_class() {
        let cases: Vec<(SawlConfig, &str)> = vec![
            (SawlConfig { initial_granularity: 3, ..Default::default() }, "powers of two"),
            (SawlConfig { max_granularity: 2, ..Default::default() }, "P <= max"),
            (SawlConfig { cmt_entries: 1, ..Default::default() }, "two entries"),
            (SawlConfig { swap_period: 0, ..Default::default() }, "swap_period"),
            (SawlConfig { gtd_period: 0, ..Default::default() }, "gtd_period"),
            (SawlConfig { sample_interval: 0, ..Default::default() }, "sample_interval"),
            (SawlConfig { observation_window: 10, ..Default::default() }, "observation window"),
        ];
        for (cfg, needle) in cases {
            let err = cfg.validate().unwrap_err();
            assert!(err.to_string().contains(needle), "{err} !~ {needle}");
        }
    }

    #[test]
    fn cache_byte_sizing() {
        let cfg = SawlConfig::default().with_cache_bytes(256 * 1024);
        assert!(cfg.cmt_entries > 10_000, "{}", cfg.cmt_entries);
    }
}
