//! SAWL configuration.
//!
//! Defaults follow the paper: initial granularity P = 4 lines (§4.1),
//! merge threshold 90%, split threshold 95%, sub-queue split rule 99%
//! (§4.1), hit-rate sampling every 100 000 requests with observation and
//! settling windows of 2^22 requests (the values trained in §4.2), and a
//! swapping period of 128 (§4.3/§4.4).

use serde::{Deserialize, Serialize};

/// All tunables of a SAWL instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SawlConfig {
    /// User data lines (power of two).
    pub data_lines: u64,
    /// Initial (and minimum) wear-leveling granularity P, in lines.
    pub initial_granularity: u64,
    /// Maximum granularity a merge may create, in lines.
    pub max_granularity: u64,
    /// CMT capacity in entries.
    pub cmt_entries: usize,
    /// Writes per line between region exchanges (PCM-S swapping period).
    pub swap_period: u64,
    /// Translation-line writes per GTD refresh step.
    pub gtd_period: u64,
    /// Requests between hit-rate samples (paper: 100 000).
    pub sample_interval: u64,
    /// Observation window SOW in requests (paper: 2^22).
    pub observation_window: u64,
    /// Settling window SSW in requests (paper: 2^22).
    pub settling_window: u64,
    /// Merge when the windowed hit rate stays below this (paper: 0.90).
    pub merge_threshold: f64,
    /// Split when the windowed hit rate stays above this (paper: 0.95) and
    /// the split-imbalance rule holds.
    pub split_threshold: f64,
    /// "If the hit ratio of the first queue OR the hit ratio of the second
    /// queue >= 99%, the NVM system splits the region for endurance."
    pub subqueue_split_threshold: f64,
    /// Fraction of hits in the first LRU half that counts as "far larger"
    /// than the second half (the paper leaves the margin unspecified; 0.90
    /// is our calibration, swept in the ablation bench).
    pub first_half_dominance: f64,
    /// Enable region-merge operations (disable for the mechanism ablation).
    pub enable_merge: bool,
    /// Enable region-split operations (disable for the mechanism ablation).
    pub enable_split: bool,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SawlConfig {
    fn default() -> Self {
        Self {
            data_lines: 1 << 16,
            initial_granularity: 4,
            max_granularity: 64,
            cmt_entries: 1024,
            swap_period: 128,
            gtd_period: 32,
            sample_interval: 100_000,
            observation_window: 1 << 22,
            settling_window: 1 << 22,
            merge_threshold: 0.90,
            split_threshold: 0.95,
            subqueue_split_threshold: 0.99,
            first_half_dominance: 0.90,
            enable_merge: true,
            enable_split: true,
            seed: 0x5A31_A110_C8ED,
        }
    }
}

impl SawlConfig {
    /// Validate internal consistency; panics with a diagnostic otherwise.
    pub fn validate(&self) {
        assert!(self.data_lines.is_power_of_two(), "data_lines must be a power of two");
        assert!(
            self.initial_granularity.is_power_of_two() && self.max_granularity.is_power_of_two(),
            "granularities must be powers of two"
        );
        assert!(
            self.initial_granularity <= self.max_granularity
                && self.max_granularity <= self.data_lines,
            "need P <= max granularity <= data lines"
        );
        assert!(self.cmt_entries >= 2, "CMT needs at least two entries");
        assert!(self.swap_period > 0 && self.gtd_period > 0);
        assert!(self.sample_interval > 0);
        assert!(self.observation_window >= self.sample_interval);
        assert!(
            (0.0..=1.0).contains(&self.merge_threshold)
                && (0.0..=1.0).contains(&self.split_threshold)
                && self.merge_threshold < self.split_threshold,
            "thresholds must satisfy 0 <= merge < split <= 1"
        );
    }

    /// Bits per CMT entry (tag + wlg + packed D), for byte-budget sizing.
    pub fn entry_bits(&self) -> u64 {
        let lrn_bits = 64 - (self.data_lines / self.initial_granularity - 1).leading_zeros() as u64;
        let d_bits = 64 - (self.data_lines - 1).leading_zeros() as u64;
        let wlg_bits = 6;
        lrn_bits + d_bits + wlg_bits
    }

    /// Set the CMT size from an SRAM byte budget.
    pub fn with_cache_bytes(mut self, bytes: u64) -> Self {
        self.cmt_entries = ((bytes * 8) / self.entry_bits()).max(2) as usize;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        SawlConfig::default().validate();
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_odd_data_lines() {
        SawlConfig { data_lines: 1000, ..Default::default() }.validate();
    }

    #[test]
    #[should_panic(expected = "merge < split")]
    fn rejects_inverted_thresholds() {
        SawlConfig { merge_threshold: 0.99, split_threshold: 0.95, ..Default::default() }
            .validate();
    }

    #[test]
    fn cache_byte_sizing() {
        let cfg = SawlConfig::default().with_cache_bytes(256 * 1024);
        assert!(cfg.cmt_entries > 10_000, "{}", cfg.cmt_entries);
    }
}
