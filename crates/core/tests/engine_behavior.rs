//! Behavior tests of the composed SAWL engine, driven entirely through its
//! public API (the subsystems carry their own white-box unit tests).

use std::collections::HashMap;

use sawl_algos::WearLeveler;
use sawl_core::{Sawl, SawlConfig};
use sawl_nvm::NvmDevice;

fn small_cfg() -> SawlConfig {
    SawlConfig {
        data_lines: 1 << 12,
        initial_granularity: 4,
        max_granularity: 64,
        cmt_entries: 64,
        swap_period: 4,
        sample_interval: 500,
        observation_window: 2_000,
        settling_window: 1_000,
        ..Default::default()
    }
}

fn make(cfg: SawlConfig) -> (Sawl, NvmDevice) {
    let s = Sawl::new(cfg);
    let dev = NvmDevice::new(
        sawl_nvm::NvmConfig::builder()
            .lines(s.required_physical_lines())
            .banks(1)
            .endurance(u32::MAX)
            .spare_shift(6)
            .build()
            .unwrap(),
    );
    (s, dev)
}

#[test]
fn starts_identity_with_invariants() {
    let (s, _) = make(small_cfg());
    for la in [0u64, 1, 100, 4095] {
        assert_eq!(s.translate(la), la);
    }
    s.check_invariants();
    assert_eq!(s.stats().region_count, 1 << 10);
}

#[test]
fn split_is_free_and_preserves_translation() {
    let (mut s, mut dev) = make(small_cfg());
    // Build an 8-line region by merging granules 0 and 1.
    assert!(s.merge(0, &mut dev));
    s.check_invariants();
    let before: Vec<u64> = (0..16).map(|la| s.translate(la)).collect();
    assert!(s.split(0, &mut dev));
    s.check_invariants();
    // Pure metadata: only translation-line writes, no data-line writes.
    let data_writes: u64 = dev.write_counts()[..1 << 12].iter().map(|&c| u64::from(c)).sum();
    let after: Vec<u64> = (0..16).map(|la| s.translate(la)).collect();
    assert_eq!(before, after, "split moved data");
    // All post-merge data writes happened during the merge, none in the
    // split: the merge writes 2Q = 8 data lines (buddy was adjacent).
    assert_eq!(data_writes, 8);
}

#[test]
fn merge_makes_one_region_and_counts_cost() {
    let (mut s, mut dev) = make(small_cfg());
    let regions_before = s.stats().region_count;
    assert!(s.merge(0, &mut dev));
    assert_eq!(s.stats().region_count, regions_before - 1);
    assert_eq!(s.stats().merges, 1);
    let e0 = s.entry(0);
    let e1 = s.entry(1);
    assert_eq!(e0, e1, "merged granules must share the entry");
    assert_eq!(e0.q(), 8);
    s.check_invariants();
}

#[test]
fn merge_respects_max_granularity() {
    let mut cfg = small_cfg();
    cfg.max_granularity = 8;
    let (mut s, mut dev) = make(cfg);
    assert!(s.merge(0, &mut dev)); // 4 -> 8
    assert!(!s.merge(0, &mut dev)); // capped
    s.check_invariants();
}

#[test]
fn split_respects_min_granularity() {
    let (mut s, mut dev) = make(small_cfg());
    assert!(!s.split(0, &mut dev), "must not split below P");
}

#[test]
fn merge_with_displacement_preserves_data_addressability() {
    // Shadow map: record translations before the merge, check every la
    // still translates to a unique pa afterwards.
    let (mut s, mut dev) = make(small_cfg());
    // Relocate granule 1's region away so the merge needs displacement.
    s.exchange(1, &mut dev);
    s.check_invariants();
    let e0 = s.entry(0);
    let e1 = s.entry(1);
    if e0.q_log2 == e1.q_log2 {
        let mut shadow: HashMap<u64, u64> = HashMap::new();
        for la in 0..64 {
            shadow.insert(la, s.translate(la));
        }
        assert!(s.merge(0, &mut dev));
        s.check_invariants();
        // After the merge, translation changed but stays injective and
        // total (check_invariants asserts it); the shadow map documents
        // which lines moved.
        let moved = (0..64).filter(|&la| s.translate(la) != shadow[&la]).count();
        assert!(moved > 0);
    }
}

#[test]
fn exchange_relocates_and_keeps_invariants() {
    let (mut s, mut dev) = make(small_cfg());
    s.exchange(0, &mut dev);
    s.check_invariants();
    assert_eq!(s.stats().exchanges, 1);
    let ov = dev.wear().overhead_writes;
    assert!(ov >= 8, "exchange cost {ov} writes");
}

#[test]
fn write_triggers_exchange_at_threshold() {
    let (mut s, mut dev) = make(small_cfg());
    let threshold = s.config().swap_period * 4; // Q = P = 4
    for _ in 0..threshold {
        s.write(0, &mut dev);
    }
    assert_eq!(s.stats().exchanges, 1);
    s.check_invariants();
}

#[test]
fn invariants_hold_under_heavy_mixed_operations() {
    let (mut s, mut dev) = make(small_cfg());
    let mut x = 0xFEEDu64;
    for round in 0..20 {
        for _ in 0..2_000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let la = x % (1 << 12);
            if x & 3 == 0 {
                s.read(la, &mut dev);
            } else {
                s.write(la, &mut dev);
            }
        }
        // Interleave explicit merges and splits of random regions.
        let g = (x >> 5) % (1 << 10);
        let base = s.region_base(g);
        if round % 2 == 0 {
            s.merge(base, &mut dev);
        } else {
            s.split(base, &mut dev);
        }
        s.check_invariants();
    }
    assert!(s.stats().exchanges > 0);
}

#[test]
fn low_hit_rate_causes_merges_and_raises_hit_rate() {
    // Uniform traffic over the whole space with a tiny CMT: hit rate
    // starts terrible; merging to max granularity must lift it.
    let cfg = SawlConfig {
        data_lines: 1 << 14,
        initial_granularity: 4,
        max_granularity: 256,
        cmt_entries: 128,
        swap_period: 1 << 30, // isolate the adaptation effect
        sample_interval: 2_000,
        observation_window: 8_000,
        settling_window: 4_000,
        ..Default::default()
    };
    let (mut s, mut dev) = make(cfg);
    let mut x = 5u64;
    let mut early_hits = 0u64;
    let early_n = 20_000u64;
    for i in 0..300_000u64 {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        let h0 = s.cmt().hits();
        s.write(x % (1 << 14), &mut dev);
        if i < early_n && s.cmt().hits() > h0 {
            early_hits += 1;
        }
    }
    assert!(s.stats().merges > 0, "no merges happened");
    let early_rate = early_hits as f64 / early_n as f64;
    // Hit rate over the last window must beat the cold-start rate.
    let late_rate = s.history().samples().last().map(|smp| smp.windowed_hit_rate).unwrap_or(0.0);
    assert!(
        late_rate > early_rate + 0.2,
        "adaptation didn't help: early {early_rate}, late {late_rate}"
    );
    assert!(s.cached_region_size() > 4.0);
    s.check_invariants();
}

#[test]
fn high_hit_rate_with_hot_head_causes_splits() {
    // First grow regions, then hammer a tiny hot set so the hit rate
    // pins near 100% with all hits in the MRU half -> splits.
    let cfg = SawlConfig {
        data_lines: 1 << 14,
        initial_granularity: 4,
        max_granularity: 256,
        cmt_entries: 128,
        swap_period: 1 << 30,
        sample_interval: 1_000,
        observation_window: 4_000,
        settling_window: 2_000,
        ..Default::default()
    };
    let (mut s, mut dev) = make(cfg);
    // Manually merge the first regions up to 64 lines.
    for _ in 0..4 {
        let base = s.region_base(0);
        s.merge(base, &mut dev);
    }
    s.check_invariants();
    let mut x = 11u64;
    for _ in 0..100_000 {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        s.write(x % 256, &mut dev); // tiny hot set
    }
    assert!(s.stats().splits > 0, "no splits despite pinned hit rate");
    s.check_invariants();
}

#[test]
fn lazy_merge_converges_touched_regions_only() {
    let (mut s, mut dev) = make(small_cfg());
    // Force the target up two levels without any monitor involvement.
    s.set_target_q_log2(4); // Q = 16 lines = 4 granules
                            // Touch only the first 64 lines.
    for _ in 0..3 {
        for la in 0..64u64 {
            s.write(la, &mut dev);
        }
    }
    // Touched regions converged to the target...
    for g in 0..16u64 {
        assert_eq!(s.entry(g).q(), 16, "granule {g} did not converge");
    }
    // ...while untouched regions stayed at the initial granularity.
    let untouched = s.entry(512);
    assert_eq!(untouched.q(), 4, "cold region merged without being touched");
    s.check_invariants();
}

#[test]
fn lazy_split_follows_target_down() {
    // Huge swap period so exchange costs don't pollute the split-cost
    // measurement below.
    let cfg = SawlConfig { swap_period: 1 << 30, ..small_cfg() };
    let (mut s, mut dev) = make(cfg);
    s.set_target_q_log2(4);
    for _ in 0..3 {
        for la in 0..64u64 {
            s.write(la, &mut dev);
        }
    }
    assert_eq!(s.entry(0).q(), 16);
    // Lower the target; accesses shrink regions one level at a time.
    s.set_target_q_log2(2);
    let before_overhead = dev.wear().overhead_writes;
    for _ in 0..3 {
        for la in 0..64u64 {
            s.write(la, &mut dev);
        }
    }
    for g in 0..16u64 {
        assert_eq!(s.entry(g).q(), 4, "granule {g} did not split back");
    }
    // Splits are metadata-only: overhead grew only by translation-line
    // writes (GTD), bounded well below one line write per data line.
    let split_overhead = dev.wear().overhead_writes - before_overhead;
    assert!(split_overhead < 64, "split cost {split_overhead} writes");
    s.check_invariants();
}

#[test]
fn one_adaptation_level_per_access() {
    let (mut s, mut dev) = make(small_cfg());
    s.set_target_q_log2(6); // Q = 64, four levels above P
    s.write(0, &mut dev);
    assert_eq!(s.entry(0).q(), 8, "first touch must merge exactly one level");
    s.write(0, &mut dev);
    assert_eq!(s.entry(0).q(), 16);
    s.write(0, &mut dev);
    s.write(0, &mut dev);
    assert_eq!(s.entry(0).q(), 64);
    s.write(0, &mut dev);
    assert_eq!(s.entry(0).q(), 64, "must stop at the target");
    s.check_invariants();
}

#[test]
fn disabled_mechanisms_keep_granularity_fixed() {
    let mut cfg = small_cfg();
    cfg.enable_merge = false;
    let (mut s, mut dev) = make(cfg);
    s.set_target_q_log2(5);
    for _ in 0..200 {
        s.write(0, &mut dev);
    }
    assert_eq!(s.entry(0).q(), 4, "merge happened despite enable_merge = false");
}

#[test]
fn history_records_samples() {
    let (mut s, mut dev) = make(small_cfg());
    for la in 0..5_000u64 {
        s.write(la % (1 << 12), &mut dev);
    }
    assert_eq!(s.history().len(), (5_000 / 500) as usize);
    let last = *s.history().samples().last().unwrap();
    assert_eq!(last.requests, 5_000);
    assert!(last.cached_region_size >= 4.0);
}

#[test]
fn translation_line_wear_is_charged() {
    let cfg = SawlConfig { swap_period: 1, ..small_cfg() };
    let (mut s, mut dev) = make(cfg);
    for _ in 0..10_000 {
        s.write(0, &mut dev);
    }
    let base = s.layout().translation_base() as usize;
    let t_wear: u64 = dev.write_counts()[base..].iter().map(|&c| u64::from(c)).sum();
    assert!(t_wear > 0, "IMT updates must wear translation lines");
}
