//! Property tests of crash recovery: random fault plans and crash points
//! under BPA and uniform traffic. After any crash, `recover()` must
//! converge, be idempotent, leave `check_invariants` clean, and preserve
//! the logical→physical bijection.

use std::collections::HashSet;

use proptest::prelude::*;

use sawl_algos::WearLeveler;
use sawl_core::{Sawl, SawlConfig};
use sawl_nvm::{FaultPlan, NvmDevice};
use sawl_trace::{AddressStream, Bpa, Uniform};

const LINES: u64 = 1 << 9;

fn make(seed: u64) -> (Sawl, NvmDevice) {
    let s = Sawl::new(SawlConfig {
        data_lines: LINES,
        initial_granularity: 4,
        max_granularity: 64,
        cmt_entries: 32,
        swap_period: 8,
        sample_interval: 200,
        observation_window: 1_000,
        settling_window: 500,
        seed,
        ..SawlConfig::default()
    });
    let dev = NvmDevice::new(
        sawl_nvm::NvmConfig::builder()
            .lines(s.required_physical_lines())
            .banks(1)
            .endurance(u32::MAX)
            .spare_shift(6)
            .build()
            .unwrap(),
    );
    (s, dev)
}

fn stream_for(pick: u64, seed: u64) -> Box<dyn AddressStream> {
    if pick == 0 {
        Box::new(Bpa::new(LINES, 64, seed))
    } else {
        Box::new(Uniform::new(LINES, 0.7, seed))
    }
}

/// Drive requests until the scheduled power loss fires (or the request
/// budget runs out), then recover to completion. Returns how many
/// recovery rounds it took (0 when the plan never fired).
fn crash_and_recover(
    sawl: &mut Sawl,
    dev: &mut NvmDevice,
    stream: &mut dyn AddressStream,
    requests: u64,
) -> u32 {
    for _ in 0..requests {
        let r = stream.next_req();
        if r.write {
            sawl.write(r.la, dev);
        } else {
            sawl.translate(r.la);
        }
        if dev.power_lost() {
            let mut rounds = 0;
            loop {
                let rec = sawl.recover(dev);
                rounds += 1;
                assert!(rounds < 32, "recovery failed to converge");
                if rec.complete {
                    return rounds;
                }
            }
        }
    }
    0
}

fn assert_bijection(sawl: &Sawl) {
    let mut seen = HashSet::new();
    for la in 0..sawl.logical_lines() {
        let pa = sawl.translate(la);
        assert!(seen.insert(pa), "la {la} collides at pa {pa}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24 })]

    #[test]
    fn random_crash_points_recover_clean(
        seed in 0u64..1 << 20,
        crash_at in 500u64..6_000,
        workload in 0u64..2,
    ) {
        let (mut sawl, mut dev) = make(seed);
        dev.install_fault_plan(&FaultPlan {
            power_loss_at_writes: vec![crash_at],
            ..FaultPlan::default()
        })
        .unwrap();
        let mut stream = stream_for(workload, seed ^ 0xABCD);

        crash_and_recover(&mut sawl, &mut dev, &mut *stream, 10_000);
        assert_eq!(dev.fault_counters().power_losses, 1, "the scheduled crash must fire");
        sawl.check_invariants();
        assert_bijection(&sawl);

        // Idempotence: recovering a healthy controller is a clean no-op.
        let before: Vec<u64> = (0..LINES).map(|la| sawl.translate(la)).collect();
        let rec = sawl.recover(&mut dev);
        assert!(rec.complete && !rec.replayed && !rec.rolled_back);
        sawl.check_invariants();
        let after: Vec<u64> = (0..LINES).map(|la| sawl.translate(la)).collect();
        assert_eq!(before, after);
    }

    #[test]
    fn random_fault_plans_with_chained_crashes_recover_clean(
        seed in 0u64..1 << 20,
        first in 300u64..3_000,
        gap in 1u64..40,
        transient_mill in 0u64..5,
    ) {
        let (mut sawl, mut dev) = make(seed);
        // Two crash points close together plus transient write faults and
        // a stuck line: the second event often lands inside the first
        // recovery's replay, exercising the resumable-recovery path.
        dev.install_fault_plan(&FaultPlan {
            stuck_lines: vec![seed % LINES],
            transient_rate: transient_mill as f64 / 1_000.0,
            power_loss_at_writes: vec![first, first + gap],
            seed,
        })
        .unwrap();
        let mut stream = stream_for(seed % 2, seed ^ 0x5EED);

        // Survive both crashes (the second may fire during or after the
        // first recovery; crash_and_recover handles either).
        crash_and_recover(&mut sawl, &mut dev, &mut *stream, 8_000);
        crash_and_recover(&mut sawl, &mut dev, &mut *stream, 8_000);
        assert!(!dev.power_lost());

        sawl.check_invariants();
        assert_bijection(&sawl);
        let f = dev.fault_counters();
        assert_eq!(f.power_losses, f.power_restores);
    }
}
