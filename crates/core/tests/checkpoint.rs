//! Checkpoint round-trip for the SAWL engine: restore into a fresh twin
//! must reproduce the exact mutable state (IMT, CMT stack, GTD, monitor
//! window, history, exchange counters, RNG, journal, event ring) and
//! continue in lockstep with the original.

use sawl_algos::WearLeveler;
use sawl_ckpt::{Reader, Writer};
use sawl_core::{Sawl, SawlConfig};
use sawl_nvm::{NvmConfig, NvmDevice};

fn cfg() -> SawlConfig {
    SawlConfig {
        data_lines: 1 << 12,
        initial_granularity: 4,
        max_granularity: 64,
        cmt_entries: 64,
        swap_period: 4,
        sample_interval: 500,
        observation_window: 2_000,
        settling_window: 1_000,
        ..Default::default()
    }
}

fn make(cfg: SawlConfig) -> (Sawl, NvmDevice) {
    let s = Sawl::new(cfg);
    let dev = NvmDevice::new(
        NvmConfig::builder()
            .lines(s.required_physical_lines())
            .banks(1)
            .endurance(1_000_000)
            .spare_shift(6)
            .build()
            .unwrap(),
    );
    (s, dev)
}

#[test]
fn sawl_roundtrips_and_continues_in_lockstep() {
    let (mut wl, mut d) = make(cfg());
    wl.telemetry_events_enable(256);
    let span = wl.logical_lines();
    let mut x = 0x2545F4914F6CDD1Du64;
    for _ in 0..30_000 {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        wl.write(x % span, &mut d);
    }
    let stats = wl.stats();
    assert!(stats.exchanges > 0, "warmup produced no exchanges");
    assert!(stats.merges > 0, "warmup produced no merges");

    let mut w = Writer::new();
    wl.ckpt_save(&mut w);
    let payload = w.into_payload();

    let (mut twin, _) = make(cfg());
    let mut r = Reader::new(&payload);
    twin.ckpt_restore(&mut r).expect("restore");
    r.finish().expect("no trailing bytes");

    let mut w2 = Writer::new();
    twin.ckpt_save(&mut w2);
    assert_eq!(payload, w2.into_payload(), "re-encode differs: state not fully captured");

    assert_eq!(wl.stats(), twin.stats());
    assert_eq!(wl.history().samples(), twin.history().samples());
    assert_eq!(wl.cmt().keys_mru(), twin.cmt().keys_mru());
    assert_eq!(wl.target_granularity(), twin.target_granularity());
    assert_eq!(wl.region_size_histogram(), twin.region_size_histogram());

    let mut d2 = d.clone();
    for i in 0..10_000u64 {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        let la = x % span;
        let (pa1, pa2) = if i % 5 == 0 {
            (wl.read(la, &mut d), twin.read(la, &mut d2))
        } else {
            (wl.write(la, &mut d), twin.write(la, &mut d2))
        };
        assert_eq!(pa1, pa2, "request landed differently at step {i}");
    }
    assert_eq!(d.wear(), d2.wear(), "device wear diverged after resume");
    assert_eq!(d.write_counts(), d2.write_counts(), "per-line wear diverged");
    assert_eq!(wl.stats(), twin.stats());
    // The resumed event ring keeps accumulating on the same clock.
    let (ev1, dropped1) = wl.telemetry_events_take().expect("events enabled");
    let (ev2, dropped2) = twin.telemetry_events_take().expect("events restored");
    assert_eq!(ev1, ev2);
    assert_eq!(dropped1, dropped2);
}

#[test]
fn sawl_restore_rejects_corruption() {
    let (mut wl, mut d) = make(cfg());
    let span = wl.logical_lines();
    for la in 0..8_000u64 {
        wl.write((la * 37) % span, &mut d);
    }
    let mut w = Writer::new();
    wl.ckpt_save(&mut w);
    let payload = w.into_payload();

    // Wrong geometry.
    let (mut small, _) = make(SawlConfig { data_lines: 1 << 10, ..cfg() });
    assert!(small.ckpt_restore(&mut Reader::new(&payload)).is_err());

    // Wrong CMT capacity.
    let (mut other_cache, _) = make(SawlConfig { cmt_entries: 32, ..cfg() });
    assert!(other_cache.ckpt_restore(&mut Reader::new(&payload)).is_err());

    // Wrong monitor window shape.
    let (mut other_window, _) = make(SawlConfig { observation_window: 4_000, ..cfg() });
    assert!(other_window.ckpt_restore(&mut Reader::new(&payload)).is_err());

    // Truncation anywhere must error, never panic.
    for cut in [0, 9, payload.len() / 3, payload.len() / 2, payload.len() - 1] {
        let (mut twin, _) = make(cfg());
        assert!(
            twin.ckpt_restore(&mut Reader::new(&payload[..cut])).is_err(),
            "truncation at {cut} not rejected"
        );
    }
}
