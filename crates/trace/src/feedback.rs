//! FTL/GC-style feedback workload: a generator that *reacts* to device
//! wear.
//!
//! Flash translation layers interleave host traffic with garbage-
//! collection bursts, and wear-aware FTLs tune the GC trigger from the
//! device's own statistics — a dynamic threshold of the form
//! `base + k1·(WAF − 1) − k2·wear_CoV`: defer cleaning while write
//! amplification is already high, clean more eagerly while wear is
//! uneven. This generator reproduces that closed loop on top of the
//! driver's observation hook: Zipf-skewed host writes accumulate
//! modelled invalid lines; at every batch boundary the driver feeds a
//! [`WearObservation`] and the trigger fires when the invalid ratio
//! crosses the dynamic threshold, switching the stream into a
//! sequential cleaning burst.
//!
//! Because the trigger consumes device state, the stream is *not*
//! replayable from its spec alone: it declares a
//! [`CursorKind::State`] cursor and checkpoints its full position.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::zipf::Zipf;
use crate::{AddressStream, CursorKind, MemReq, ReqRun, WearObservation};

/// What the generator is currently emitting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// Zipf-skewed host traffic.
    Host,
    /// A sequential cleaning burst with this many writes left.
    Gc { remaining: u64 },
}

/// Wear-feedback GC workload: Zipf host traffic with observation-driven
/// sequential cleaning bursts.
#[derive(Debug, Clone)]
pub struct GcFeedback {
    rng: SmallRng,
    zipf: Zipf,
    space: u64,
    write_ratio: f64,
    /// Base invalid-ratio trigger threshold.
    base_threshold: f64,
    /// Threshold gain on (WAF − 1): high amplification defers cleaning.
    waf_gain: f64,
    /// Threshold gain on wear CoV: uneven wear advances cleaning.
    cov_gain: f64,
    /// Writes per cleaning burst.
    gc_burst: u64,
    /// Modelled invalid lines awaiting cleaning.
    invalid: u64,
    mode: Mode,
    /// Next line the cleaner relocates (walks the space cyclically).
    gc_cursor: u64,
    /// Cleaning bursts triggered so far (observability).
    gc_triggers: u64,
}

impl GcFeedback {
    /// Zipf(`exponent`) host traffic over `space` lines with the given
    /// write ratio; cleaning bursts of `gc_burst` sequential writes fire
    /// when the invalid ratio crosses
    /// `base_threshold + waf_gain·(WAF−1) − cov_gain·wear_CoV`.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        space: u64,
        exponent: f64,
        write_ratio: f64,
        base_threshold: f64,
        waf_gain: f64,
        cov_gain: f64,
        gc_burst: u64,
        seed: u64,
    ) -> Self {
        assert!(space > 0, "empty address space");
        assert!((0.0..=1.0).contains(&write_ratio));
        assert!((0.0..=1.0).contains(&base_threshold), "base threshold is a ratio");
        assert!(gc_burst > 0, "cleaning burst must be non-zero");
        Self {
            rng: SmallRng::seed_from_u64(seed),
            zipf: Zipf::new(space, exponent),
            space,
            write_ratio,
            base_threshold,
            waf_gain,
            cov_gain,
            gc_burst,
            invalid: 0,
            mode: Mode::Host,
            gc_cursor: 0,
            gc_triggers: 0,
        }
    }

    /// Cleaning bursts triggered so far.
    pub fn gc_triggers(&self) -> u64 {
        self.gc_triggers
    }

    /// Whether a cleaning burst is in progress.
    pub fn in_gc(&self) -> bool {
        matches!(self.mode, Mode::Gc { .. })
    }

    /// The dynamic trigger threshold for a given observation.
    pub fn dynamic_threshold(&self, obs: &WearObservation) -> f64 {
        (self.base_threshold + self.waf_gain * (obs.waf() - 1.0) - self.cov_gain * obs.wear_cov)
            .clamp(0.02, 0.98)
    }

    #[inline]
    fn gen_one(&mut self) -> MemReq {
        match self.mode {
            Mode::Host => {
                let la = self.zipf.sample(&mut self.rng);
                let write = self.rng.random::<f64>() < self.write_ratio;
                if write {
                    // An overwrite invalidates the key's previous version.
                    self.invalid = (self.invalid + 1).min(self.space);
                }
                MemReq { la, write }
            }
            Mode::Gc { remaining } => {
                let la = self.gc_cursor;
                self.gc_cursor = (self.gc_cursor + 1) % self.space;
                self.invalid = self.invalid.saturating_sub(1);
                self.mode =
                    if remaining > 1 { Mode::Gc { remaining: remaining - 1 } } else { Mode::Host };
                MemReq::write(la)
            }
        }
    }
}

impl AddressStream for GcFeedback {
    #[inline]
    fn next_req(&mut self) -> MemReq {
        self.gen_one()
    }

    fn fill(&mut self, buf: &mut [MemReq]) -> usize {
        for slot in buf.iter_mut() {
            *slot = self.gen_one();
        }
        buf.len()
    }

    fn fill_runs(&mut self, runs: &mut Vec<ReqRun>, scratch: &mut [MemReq]) -> u64 {
        // Coalesce directly off the generator: host-mode hot ranks repeat
        // back to back, and the mode machine advances exactly as in
        // `next_req` (the trigger itself only moves in `observe_wear`,
        // which drivers call at batch boundaries — never mid-block).
        runs.clear();
        let mut cur: Option<ReqRun> = None;
        for _ in 0..scratch.len() {
            let req = self.gen_one();
            match &mut cur {
                Some(run) if run.la == req.la && run.write == req.write => run.len += 1,
                _ => {
                    if let Some(run) = cur.replace(ReqRun { la: req.la, write: req.write, len: 1 })
                    {
                        runs.push(run);
                    }
                }
            }
        }
        if let Some(run) = cur {
            runs.push(run);
        }
        scratch.len() as u64
    }

    fn space_lines(&self) -> u64 {
        self.space
    }

    fn name(&self) -> &str {
        "gc-feedback"
    }

    fn wants_observation(&self) -> bool {
        true
    }

    fn observe_wear(&mut self, obs: &WearObservation) {
        // Never preempt a burst in flight; the trigger is edge-sensitive
        // at batch boundaries, which keeps batched and scalar drivers
        // bit-identical as long as both feed observations at the same
        // request offsets.
        if self.in_gc() {
            return;
        }
        let invalid_ratio = self.invalid as f64 / self.space as f64;
        if invalid_ratio > self.dynamic_threshold(obs) {
            self.mode = Mode::Gc { remaining: self.gc_burst };
            self.gc_triggers += 1;
        }
    }

    fn cursor_kind(&self) -> CursorKind {
        CursorKind::State
    }

    fn cursor_save(&self, w: &mut sawl_ckpt::Writer) {
        w.put_rng(self.rng.state());
        w.put_u64(self.invalid);
        match self.mode {
            Mode::Host => {
                w.put_u8(0);
                w.put_u64(0);
            }
            Mode::Gc { remaining } => {
                w.put_u8(1);
                w.put_u64(remaining);
            }
        }
        w.put_u64(self.gc_cursor);
        w.put_u64(self.gc_triggers);
    }

    fn cursor_restore(&mut self, r: &mut sawl_ckpt::Reader) -> Result<(), sawl_ckpt::CkptError> {
        self.rng = SmallRng::from_state(r.get_rng()?);
        self.invalid = r.get_u64()?;
        let tag = r.get_u8()?;
        let remaining = r.get_u64()?;
        self.mode = match tag {
            0 => Mode::Host,
            1 if remaining > 0 && remaining <= self.gc_burst => Mode::Gc { remaining },
            1 => {
                return Err(sawl_ckpt::CkptError::Corrupt(format!(
                    "gc burst remainder {remaining} outside the {}-write burst",
                    self.gc_burst
                )))
            }
            t => return Err(sawl_ckpt::CkptError::Corrupt(format!("unknown gc mode tag {t}"))),
        };
        self.gc_cursor = r.get_u64()?;
        if self.gc_cursor >= self.space {
            return Err(sawl_ckpt::CkptError::Corrupt(format!(
                "gc cursor {} outside space {}",
                self.gc_cursor, self.space
            )));
        }
        self.gc_triggers = r.get_u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(demand: u64, overhead: u64, cov: f64) -> WearObservation {
        WearObservation {
            demand_writes: demand,
            overhead_writes: overhead,
            wear_mean: 1.0,
            wear_cov: cov,
            wear_max: 1,
        }
    }

    #[test]
    fn host_mode_until_the_trigger_fires() {
        let mut g = GcFeedback::new(1 << 10, 1.0, 1.0, 0.1, 0.0, 0.0, 64, 7);
        assert!(!g.in_gc());
        // Accumulate invalid lines past 10% of the space, then observe.
        for _ in 0..200 {
            assert!(g.next_req().write);
        }
        g.observe_wear(&obs(200, 0, 0.0));
        assert!(g.in_gc(), "invalid ratio 200/1024 > 0.1 must trigger");
        assert_eq!(g.gc_triggers(), 1);
        // The burst is sequential writes from the cleaning cursor.
        let first = g.next_req();
        let second = g.next_req();
        assert!(first.write && second.write);
        assert_eq!(second.la, first.la + 1);
        // It ends after exactly gc_burst writes.
        for _ in 2..64 {
            g.next_req();
        }
        assert!(!g.in_gc());
    }

    #[test]
    fn waf_defers_and_cov_advances_the_trigger() {
        let g = GcFeedback::new(1 << 10, 1.0, 1.0, 0.3, 0.5, 0.5, 64, 7);
        let base = g.dynamic_threshold(&obs(100, 0, 0.0));
        let high_waf = g.dynamic_threshold(&obs(100, 100, 0.0));
        let high_cov = g.dynamic_threshold(&obs(100, 0, 0.4));
        assert!(high_waf > base, "WAF must raise the threshold");
        assert!(high_cov < base, "wear CoV must lower the threshold");
    }

    #[test]
    fn observation_mid_burst_is_ignored() {
        let mut g = GcFeedback::new(256, 1.0, 1.0, 0.05, 0.0, 0.0, 32, 3);
        for _ in 0..100 {
            g.next_req();
        }
        g.observe_wear(&obs(100, 0, 0.0));
        assert!(g.in_gc());
        g.observe_wear(&obs(100, 0, 0.0));
        assert_eq!(g.gc_triggers(), 1, "no re-trigger mid-burst");
    }

    #[test]
    fn cursor_round_trips_mid_burst() {
        let mk = || GcFeedback::new(1 << 10, 1.1, 0.9, 0.05, 0.2, 0.3, 48, 11);
        let mut reference = mk();
        for _ in 0..300 {
            reference.next_req();
        }
        reference.observe_wear(&obs(300, 17, 0.2));
        for _ in 0..10 {
            reference.next_req();
        }
        assert!(reference.in_gc());
        let mut w = sawl_ckpt::Writer::new();
        reference.cursor_save(&mut w);
        let payload = w.into_payload();
        let mut restored = mk();
        let mut r = sawl_ckpt::Reader::new(&payload);
        restored.cursor_restore(&mut r).unwrap();
        r.finish().unwrap();
        for i in 0..500 {
            assert_eq!(restored.next_req(), reference.next_req(), "diverged at {i}");
        }
        assert_eq!(restored.gc_triggers(), reference.gc_triggers());
    }

    #[test]
    fn declares_a_state_cursor_and_wants_observation() {
        let g = GcFeedback::new(256, 1.0, 0.5, 0.2, 0.1, 0.1, 16, 1);
        assert!(g.wants_observation());
        assert_eq!(g.cursor_kind(), CursorKind::State);
    }
}
