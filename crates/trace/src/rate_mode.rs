//! Rate-mode execution: N cores each running a private copy of the same
//! benchmark.
//!
//! The paper "perform[s] evaluations by executing the benchmark in rate
//! mode, where all the eight cores execute the same benchmark" (§4.1,
//! citing DEUCE). Each copy owns its own data, so the logical address
//! space is partitioned into `cores` equal slices; core `i`'s requests are
//! confined to slice `i`, and the memory controller sees the round-robin
//! interleaving of the per-core streams (a faithful model for cores that
//! progress at the same rate, which is what rate mode is for).

use crate::{AddressStream, MemReq};

/// Round-robin interleaving of per-core benchmark copies over a sliced
/// address space.
pub struct RateMode<S> {
    cores: Vec<S>,
    slice_lines: u64,
    space: u64,
    next: usize,
    label: String,
}

impl<S: AddressStream> RateMode<S> {
    /// Build from per-core streams. Each stream must cover `space / N`
    /// lines (its private slice); the combined stream covers `space`.
    pub fn new(cores: Vec<S>, space: u64) -> Self {
        assert!(!cores.is_empty(), "rate mode needs at least one core");
        let n = cores.len() as u64;
        assert!(space.is_multiple_of(n), "space must divide evenly across cores");
        let slice_lines = space / n;
        for (i, c) in cores.iter().enumerate() {
            assert_eq!(
                c.space_lines(),
                slice_lines,
                "core {i} stream covers {} lines, expected the {slice_lines}-line slice",
                c.space_lines()
            );
        }
        let label = format!("rate{}({})", cores.len(), cores[0].name());
        Self { cores, slice_lines, space, next: 0, label }
    }

    /// Convenience: clone one generator per core with derived seeds.
    pub fn homogeneous(
        space: u64,
        cores: u64,
        make: impl Fn(u64, u64) -> S, // (slice_lines, core_seed) -> stream
        seed: u64,
    ) -> Self {
        assert!(cores > 0 && space.is_multiple_of(cores));
        let slice = space / cores;
        let streams = (0..cores).map(|i| make(slice, seed.wrapping_add(i * 0x9E37))).collect();
        Self::new(streams, space)
    }
}

impl<S: AddressStream> AddressStream for RateMode<S> {
    fn next_req(&mut self) -> MemReq {
        let core = self.next;
        self.next = (self.next + 1) % self.cores.len();
        let r = self.cores[core].next_req();
        MemReq { la: core as u64 * self.slice_lines + r.la, write: r.write }
    }

    fn space_lines(&self) -> u64 {
        self.space
    }

    fn name(&self) -> &str {
        &self.label
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::patterns::SeqScan;
    use crate::spec::SpecBenchmark;

    #[test]
    fn interleaves_round_robin_with_slice_offsets() {
        let cores: Vec<SeqScan> = (0..4).map(|i| SeqScan::new(16, 0, 4, 1.0, i)).collect();
        let mut rm = RateMode::new(cores, 64);
        let first_round: Vec<u64> = (0..4).map(|_| rm.next_req().la).collect();
        assert_eq!(first_round, vec![0, 16, 32, 48]);
        let second_round: Vec<u64> = (0..4).map(|_| rm.next_req().la).collect();
        assert_eq!(second_round, vec![1, 17, 33, 49]);
    }

    #[test]
    fn each_core_stays_in_its_slice() {
        let mut rm = RateMode::homogeneous(
            1 << 16,
            8,
            |slice, seed| SpecBenchmark::Gcc.stream(slice, seed),
            42,
        );
        for i in 0..10_000u64 {
            let core = i % 8;
            let r = rm.next_req();
            let slice = (1u64 << 16) / 8;
            assert!(
                r.la >= core * slice && r.la < (core + 1) * slice,
                "request {} for core {core} left its slice: {}",
                i,
                r.la
            );
        }
    }

    #[test]
    fn cores_draw_distinct_randomness() {
        let mut rm = RateMode::homogeneous(
            1 << 14,
            2,
            |slice, seed| SpecBenchmark::Mcf.stream(slice, seed),
            7,
        );
        let a: Vec<u64> = (0..64).map(|_| rm.next_req().la).collect();
        let core0: Vec<u64> = a.iter().step_by(2).copied().collect();
        let core1: Vec<u64> = a.iter().skip(1).step_by(2).map(|&x| x % (1 << 13)).collect();
        assert_ne!(core0, core1, "cores replayed identical sequences");
    }

    #[test]
    #[should_panic(expected = "divide evenly")]
    fn rejects_uneven_split() {
        let cores: Vec<SeqScan> = (0..3).map(|i| SeqScan::new(16, 0, 4, 1.0, i)).collect();
        let _ = RateMode::new(cores, 64);
    }

    #[test]
    fn name_reflects_core_count() {
        let cores: Vec<SeqScan> = (0..2).map(|i| SeqScan::new(8, 0, 4, 1.0, i)).collect();
        let rm = RateMode::new(cores, 16);
        assert_eq!(rm.name(), "rate2(seqscan)");
    }
}
