//! Reuse-distance measurement.
//!
//! The CMT is an LRU cache, so a stream's *reuse-distance* profile (how
//! many distinct addresses appear between consecutive uses of the same
//! address) completely determines its hit rate at every cache size: a
//! request hits a C-entry LRU iff its reuse distance is `< C`. The
//! trajectory figures lean on this to explain *why* a workload hits or
//! misses; the tracker also lets tests validate the SPEC-like models'
//! locality classes directly.
//!
//! Exact reuse distance costs O(footprint) per request; we instead sample
//! one in `sample_period` requests and measure its distance exactly with a
//! scan — unbiased, and cheap for the sampling rates the reports use.

use std::collections::HashMap;

/// Sampled reuse-distance histogram over region ids (or any key).
#[derive(Debug, Clone)]
pub struct ReuseTracker {
    /// Most-recent access timestamp per key.
    last_access: HashMap<u64, u64>,
    /// Accesses ordered by time: ring of the most recent `window` keys,
    /// used for the exact distance scan of sampled requests.
    ring: Vec<u64>,
    ring_pos: usize,
    clock: u64,
    sample_period: u64,
    /// log2-bucketed distances; the last bucket also collects "further
    /// than the window" and cold misses.
    histogram: Vec<u64>,
    samples: u64,
}

impl ReuseTracker {
    /// Track with the given sampling period and lookback window.
    pub fn new(sample_period: u64, window: usize) -> Self {
        assert!(sample_period > 0 && window > 1);
        Self {
            last_access: HashMap::new(),
            ring: vec![u64::MAX; window],
            ring_pos: 0,
            clock: 0,
            sample_period,
            histogram: vec![0; (usize::BITS - window.leading_zeros()) as usize + 1],
            samples: 0,
        }
    }

    /// Observe one key.
    pub fn observe(&mut self, key: u64) {
        if self.clock.is_multiple_of(self.sample_period) {
            self.sample(key);
        }
        self.last_access.insert(key, self.clock);
        self.ring[self.ring_pos] = key;
        self.ring_pos = (self.ring_pos + 1) % self.ring.len();
        self.clock += 1;
    }

    fn sample(&mut self, key: u64) {
        self.samples += 1;
        let Some(&last) = self.last_access.get(&key) else {
            // Cold: counts as "beyond the window".
            *self.histogram.last_mut().unwrap() += 1;
            return;
        };
        let age = (self.clock - last) as usize;
        if age > self.ring.len() {
            *self.histogram.last_mut().unwrap() += 1;
            return;
        }
        // Exact stack distance: distinct keys among the last `age`
        // accesses (excluding the reuse itself).
        let mut distinct = std::collections::HashSet::new();
        for i in 1..age {
            let idx = (self.ring_pos + self.ring.len() - i) % self.ring.len();
            let k = self.ring[idx];
            if k != key && k != u64::MAX {
                distinct.insert(k);
            }
        }
        let d = distinct.len();
        let bucket = if d == 0 { 0 } else { (usize::BITS - d.leading_zeros()) as usize };
        let bucket = bucket.min(self.histogram.len() - 1);
        self.histogram[bucket] += 1;
    }

    /// The log2-bucketed histogram (bucket 0 = distance 0, bucket k =
    /// distances [2^(k-1), 2^k), last bucket = beyond window / cold).
    pub fn histogram(&self) -> &[u64] {
        &self.histogram
    }

    /// Number of sampled requests.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// Estimated LRU hit rate at a cache of `entries` entries: fraction of
    /// sampled reuses with distance below the capacity. Only distances
    /// within the tracker's lookback window are measurable, so the
    /// estimate is a *lower bound* for capacities at or beyond the window
    /// (the overflow bucket is never counted as a hit).
    pub fn estimated_hit_rate(&self, entries: usize) -> f64 {
        if self.samples == 0 {
            return 0.0;
        }
        let cap_bucket =
            if entries == 0 { 0 } else { (usize::BITS - entries.leading_zeros()) as usize };
        // Never count the overflow/cold bucket as hits.
        let cap_bucket = cap_bucket.min(self.histogram.len() - 1);
        let below: u64 = self.histogram.iter().take(cap_bucket).sum();
        below as f64 / self.samples as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cyclic_scan_has_distance_equal_to_cycle() {
        let mut t = ReuseTracker::new(1, 256);
        for i in 0..800u64 {
            t.observe(i % 8); // cycle of 8 keys -> stack distance 7
        }
        // Distances land in the bucket holding 7 (bucket 3: 4..8).
        let h = t.histogram();
        let hot: u64 = h[3];
        assert!(hot > t.samples() / 2, "expected most samples at distance 7: {h:?}");
        // And an LRU of 8 entries would hit nearly always, of 4 never.
        assert!(t.estimated_hit_rate(8) > 0.9);
        assert!(t.estimated_hit_rate(4) < 0.1);
    }

    #[test]
    fn repeated_key_has_distance_zero() {
        let mut t = ReuseTracker::new(1, 64);
        for _ in 0..100 {
            t.observe(42);
        }
        assert!(t.histogram()[0] >= 98, "{:?}", t.histogram());
        assert!(t.estimated_hit_rate(1) > 0.9);
    }

    #[test]
    fn streaming_never_reuses() {
        let mut t = ReuseTracker::new(1, 64);
        for i in 0..500u64 {
            t.observe(i);
        }
        assert_eq!(*t.histogram().last().unwrap(), t.samples());
        assert_eq!(t.estimated_hit_rate(1 << 20), 0.0);
    }

    #[test]
    fn sampling_reduces_measured_requests() {
        let mut t = ReuseTracker::new(10, 64);
        for i in 0..1_000u64 {
            t.observe(i % 4);
        }
        assert_eq!(t.samples(), 100);
    }

    #[test]
    fn spec_models_locality_classes_are_ordered() {
        use crate::spec::SpecBenchmark;
        use crate::AddressStream;
        // gromacs (tiny hot footprint) must show far more short-distance
        // reuse than mcf (huge scattered footprint) at region granularity.
        let reuse = |b: SpecBenchmark| {
            let mut t = ReuseTracker::new(7, 4096);
            let mut s = b.stream(1 << 20, 5);
            for _ in 0..200_000 {
                t.observe(s.next_req().la / 4);
            }
            t.estimated_hit_rate(1024)
        };
        let gromacs = reuse(SpecBenchmark::Gromacs);
        let mcf = reuse(SpecBenchmark::Mcf);
        assert!(gromacs > mcf + 0.2, "gromacs {gromacs} vs mcf {mcf}");
    }
}
