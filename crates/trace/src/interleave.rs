//! Multi-tenant interleaving: N independent child streams time-sliced
//! onto one device.
//!
//! A shared memory pool serving many tenants sees each tenant's traffic
//! in scheduling quanta, not blended per-request: tenant A gets the
//! device for a slice, then tenant B, round-robin. The wear profile
//! differs from a probabilistic [`Mix`](crate::Mix) — each tenant's
//! locality arrives intact within its slice, so schemes that adapt on
//! short windows see alternating workload regimes (the situation SAWL's
//! self-adaptive window targets).

use crate::phased::combined_cursor_kind;
use crate::{AddressStream, CursorKind, MemReq, ReqRun, WearObservation};

/// Deterministic round-robin time-slicing of child streams.
pub struct Interleave {
    children: Vec<Box<dyn AddressStream + Send>>,
    slice: u64,
    current: usize,
    /// Requests left in the current slice.
    remaining: u64,
    space: u64,
    label: String,
    /// Reusable buffer for delegating `fill_runs` to children.
    child_runs: Vec<ReqRun>,
}

impl Interleave {
    /// Interleave `children` in round-robin slices of `slice` requests.
    /// All children must share one address-space size.
    pub fn new(children: Vec<Box<dyn AddressStream + Send>>, slice: u64) -> Self {
        assert!(!children.is_empty(), "interleave needs at least one tenant");
        assert!(slice > 0, "slice must be non-zero");
        let space = children[0].space_lines();
        assert!(
            children.iter().all(|c| c.space_lines() == space),
            "all tenants must share one address space"
        );
        let label =
            format!("multi({})", children.iter().map(|c| c.name()).collect::<Vec<_>>().join("+"));
        Self { children, slice, current: 0, remaining: slice, space, label, child_runs: Vec::new() }
    }

    /// Index of the tenant currently holding the device.
    pub fn current_tenant(&self) -> usize {
        self.current
    }

    #[inline]
    fn advance_slice(&mut self) {
        if self.remaining == 0 {
            self.current = (self.current + 1) % self.children.len();
            self.remaining = self.slice;
        }
    }
}

impl AddressStream for Interleave {
    fn next_req(&mut self) -> MemReq {
        self.advance_slice();
        self.remaining -= 1;
        self.children[self.current].next_req()
    }

    fn fill(&mut self, buf: &mut [MemReq]) -> usize {
        // Delegate whole in-slice runs to the child's own batched path, so
        // interleaving costs one virtual dispatch per slice fragment
        // instead of one per request.
        let mut i = 0;
        while i < buf.len() {
            self.advance_slice();
            let run = self.remaining.min((buf.len() - i) as u64) as usize;
            self.children[self.current].fill(&mut buf[i..i + run]);
            self.remaining -= run as u64;
            i += run;
        }
        buf.len()
    }

    fn fill_runs(&mut self, runs: &mut Vec<ReqRun>, scratch: &mut [MemReq]) -> u64 {
        // Delegate slice fragments to each child's `fill_runs`, so
        // run-structured tenants (BPA dwells, RAA) keep their O(1)-per-run
        // emission through the interleaver.
        runs.clear();
        let budget = scratch.len() as u64;
        let mut total = 0;
        let mut child_runs = std::mem::take(&mut self.child_runs);
        while total < budget {
            self.advance_slice();
            let take = self.remaining.min(budget - total) as usize;
            let covered =
                self.children[self.current].fill_runs(&mut child_runs, &mut scratch[..take]);
            debug_assert_eq!(covered, take as u64);
            runs.append(&mut child_runs);
            self.remaining -= covered;
            total += covered;
        }
        self.child_runs = child_runs;
        total
    }

    fn space_lines(&self) -> u64 {
        self.space
    }

    fn name(&self) -> &str {
        &self.label
    }

    fn wants_observation(&self) -> bool {
        self.children.iter().any(|c| c.wants_observation())
    }

    fn observe_wear(&mut self, obs: &WearObservation) {
        for c in &mut self.children {
            c.observe_wear(obs);
        }
    }

    fn cursor_kind(&self) -> CursorKind {
        combined_cursor_kind(self.children.iter().map(|c| c.cursor_kind()))
    }

    fn cursor_save(&self, w: &mut sawl_ckpt::Writer) {
        w.put_u64(self.current as u64);
        w.put_u64(self.remaining);
        for c in &self.children {
            c.cursor_save(w);
        }
    }

    fn cursor_restore(&mut self, r: &mut sawl_ckpt::Reader) -> Result<(), sawl_ckpt::CkptError> {
        let current = r.get_u64()? as usize;
        if current >= self.children.len() {
            return Err(sawl_ckpt::CkptError::Corrupt(format!(
                "tenant cursor {current} past the {}-tenant interleave",
                self.children.len()
            )));
        }
        self.current = current;
        self.remaining = r.get_u64()?;
        if self.remaining > self.slice {
            return Err(sawl_ckpt::CkptError::Corrupt(format!(
                "slice remainder {} exceeds the {}-request slice",
                self.remaining, self.slice
            )));
        }
        for c in &mut self.children {
            c.cursor_restore(r)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attack::{Bpa, Raa};
    use crate::patterns::SeqScan;

    fn boxed<S: AddressStream + Send + 'static>(s: S) -> Box<dyn AddressStream + Send> {
        Box::new(s)
    }

    #[test]
    fn slices_round_robin() {
        let mut i = Interleave::new(vec![boxed(Raa::new(1, 10)), boxed(Raa::new(2, 10))], 3);
        let seq: Vec<u64> = (0..9).map(|_| i.next_req().la).collect();
        assert_eq!(seq, vec![1, 1, 1, 2, 2, 2, 1, 1, 1]);
    }

    #[test]
    fn tenants_keep_internal_state_across_slices() {
        let mut i = Interleave::new(
            vec![boxed(SeqScan::new(16, 0, 8, 1.0, 0)), boxed(Raa::new(15, 16))],
            2,
        );
        let seq: Vec<u64> = (0..8).map(|_| i.next_req().la).collect();
        // The scan resumes where it left off after the RAA slice.
        assert_eq!(seq, vec![0, 1, 15, 15, 2, 3, 15, 15]);
    }

    #[test]
    fn fill_matches_next_req() {
        let mk = || {
            Interleave::new(
                vec![
                    boxed(Bpa::new(1 << 10, 96, 3)),
                    boxed(SeqScan::new(1 << 10, 0, 64, 0.7, 5)),
                    boxed(Raa::new(7, 1 << 10)),
                ],
                100,
            )
        };
        let mut batched = mk();
        let mut scalar = mk();
        let mut buf = [MemReq::read(0); 512];
        for round in 0..5 {
            batched.fill(&mut buf);
            for (i, slot) in buf.iter().enumerate() {
                assert_eq!(*slot, scalar.next_req(), "round {round} request {i}");
            }
        }
    }

    #[test]
    fn cursor_round_trips_through_children() {
        let mk = || {
            Interleave::new(
                vec![boxed(Bpa::new(1 << 10, 33, 3)), boxed(SeqScan::new(1 << 10, 0, 64, 0.7, 5))],
                57,
            )
        };
        let mut reference = mk();
        for _ in 0..1234 {
            reference.next_req();
        }
        assert_eq!(reference.cursor_kind(), CursorKind::State);
        let mut w = sawl_ckpt::Writer::new();
        reference.cursor_save(&mut w);
        let payload = w.into_payload();
        let mut restored = mk();
        let mut r = sawl_ckpt::Reader::new(&payload);
        restored.cursor_restore(&mut r).unwrap();
        r.finish().unwrap();
        for i in 0..500 {
            assert_eq!(restored.next_req(), reference.next_req(), "diverged at {i}");
        }
    }

    #[test]
    #[should_panic(expected = "share one address space")]
    fn rejects_mismatched_spaces() {
        let _ = Interleave::new(vec![boxed(Raa::new(0, 16)), boxed(Raa::new(0, 32))], 4);
    }

    #[test]
    fn names_compose() {
        let i = Interleave::new(vec![boxed(Raa::new(0, 8)), boxed(Raa::new(1, 8))], 4);
        assert_eq!(i.name(), "multi(raa+raa)");
    }
}
