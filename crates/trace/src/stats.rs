//! Online statistics over a request stream.
//!
//! Used by the experiment drivers to report workload characteristics next
//! to results (write ratio, footprint, region-touch spread) and by tests to
//! validate that the SPEC-like models have the intended shape.

use std::collections::HashMap;

use crate::MemReq;

/// Accumulates statistics as requests flow by.
#[derive(Debug, Clone, Default)]
pub struct StreamStats {
    reads: u64,
    writes: u64,
    /// Exact per-line write counts; bounded by the footprint, not the
    /// stream length.
    write_counts: HashMap<u64, u64>,
    /// Exact set of all touched lines (reads and writes).
    touched: HashMap<u64, ()>,
    min_la: u64,
    max_la: u64,
}

impl StreamStats {
    /// Fresh accumulator.
    pub fn new() -> Self {
        Self { min_la: u64::MAX, ..Self::default() }
    }

    /// Record one request.
    pub fn observe(&mut self, req: MemReq) {
        if req.write {
            self.writes += 1;
            *self.write_counts.entry(req.la).or_insert(0) += 1;
        } else {
            self.reads += 1;
        }
        self.touched.entry(req.la).or_insert(());
        self.min_la = self.min_la.min(req.la);
        self.max_la = self.max_la.max(req.la);
    }

    /// Total requests observed.
    pub fn total(&self) -> u64 {
        self.reads + self.writes
    }

    /// Reads observed.
    pub fn reads(&self) -> u64 {
        self.reads
    }

    /// Writes observed.
    pub fn writes(&self) -> u64 {
        self.writes
    }

    /// Fraction of requests that were writes.
    pub fn write_ratio(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            self.writes as f64 / self.total() as f64
        }
    }

    /// Number of distinct lines touched.
    pub fn footprint(&self) -> u64 {
        self.touched.len() as u64
    }

    /// Number of distinct lines written.
    pub fn write_footprint(&self) -> u64 {
        self.write_counts.len() as u64
    }

    /// Smallest fraction of written lines receiving `frac` of all writes —
    /// e.g. `write_concentration(0.5) == 0.01` means 1% of written lines
    /// absorb half the writes. Lower is more concentrated.
    pub fn write_concentration(&self, frac: f64) -> f64 {
        assert!((0.0..=1.0).contains(&frac));
        if self.writes == 0 {
            return 0.0;
        }
        let mut counts: Vec<u64> = self.write_counts.values().copied().collect();
        counts.sort_unstable_by(|a, b| b.cmp(a));
        let target = (self.writes as f64 * frac).ceil() as u64;
        let mut acc = 0u64;
        for (i, c) in counts.iter().enumerate() {
            acc += c;
            if acc >= target {
                return (i + 1) as f64 / counts.len() as f64;
            }
        }
        1.0
    }

    /// Span of addresses seen, as `(min, max)`; `None` before any request.
    pub fn address_span(&self) -> Option<(u64, u64)> {
        if self.total() == 0 {
            None
        } else {
            Some((self.min_la, self.max_la))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemReq;

    #[test]
    fn counts_reads_and_writes() {
        let mut s = StreamStats::new();
        s.observe(MemReq::write(1));
        s.observe(MemReq::write(1));
        s.observe(MemReq::read(2));
        assert_eq!(s.total(), 3);
        assert_eq!(s.writes(), 2);
        assert_eq!(s.reads(), 1);
        assert!((s.write_ratio() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn footprints_are_distinct_counts() {
        let mut s = StreamStats::new();
        for la in [1, 1, 2, 3] {
            s.observe(MemReq::write(la));
        }
        s.observe(MemReq::read(9));
        assert_eq!(s.footprint(), 4);
        assert_eq!(s.write_footprint(), 3);
    }

    #[test]
    fn concentration_of_uniform_writes_is_proportional() {
        let mut s = StreamStats::new();
        for la in 0..100 {
            s.observe(MemReq::write(la));
        }
        let c = s.write_concentration(0.5);
        assert!((c - 0.5).abs() < 0.02, "uniform concentration {c}");
    }

    #[test]
    fn concentration_of_skewed_writes_is_small() {
        let mut s = StreamStats::new();
        for _ in 0..1000 {
            s.observe(MemReq::write(0));
        }
        for la in 1..100 {
            s.observe(MemReq::write(la));
        }
        // Line 0 alone has ~91% of writes.
        assert!(s.write_concentration(0.5) <= 0.02);
    }

    #[test]
    fn address_span_tracks_extremes() {
        let mut s = StreamStats::new();
        assert_eq!(s.address_span(), None);
        s.observe(MemReq::read(5));
        s.observe(MemReq::write(2));
        s.observe(MemReq::write(40));
        assert_eq!(s.address_span(), Some((2, 40)));
    }
}
