//! Attack programs used by the paper's robustness experiments (§2.2, §4.3).
//!
//! * **RAA** (Repeated Address Attack, Qureshi et al. HPCA'11): "an attack
//!   program that writes data to the same address repeatedly". Defeats any
//!   scheme whose logical→physical mapping is static in some dimension
//!   (Segment Swapping keeps the intra-segment offset; RBSG keeps the
//!   region).
//! * **BPA** (Birthday Paradox Attack, Seznec CAL'10): "randomly select
//!   logical addresses and repeatedly write to each one precisely". Even
//!   when a scheme migrates the attacked line, randomly re-chosen targets
//!   collide with already-worn physical lines at birthday-paradox rates, so
//!   BPA stresses how fast a scheme spreads accumulated wear across the
//!   *whole* device. This is the paper's worst-case lifetime workload
//!   (Figs. 3, 4, 5, 15).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::{AddressStream, CursorKind, MemReq, ReqRun};

/// Repeated Address Attack: writes one logical line forever.
#[derive(Debug, Clone)]
pub struct Raa {
    target: u64,
    space: u64,
}

impl Raa {
    /// Attack logical line `target` within a space of `space` lines.
    pub fn new(target: u64, space: u64) -> Self {
        assert!(target < space, "target {target} outside space {space}");
        Self { target, space }
    }
}

impl AddressStream for Raa {
    #[inline]
    fn next_req(&mut self) -> MemReq {
        MemReq::write(self.target)
    }

    fn fill(&mut self, buf: &mut [MemReq]) -> usize {
        buf.fill(MemReq::write(self.target));
        buf.len()
    }

    fn fill_runs(&mut self, runs: &mut Vec<ReqRun>, scratch: &mut [MemReq]) -> u64 {
        // The whole block is one run; `scratch` is only the request budget.
        runs.clear();
        let n = scratch.len() as u64;
        runs.push(ReqRun { la: self.target, write: true, len: n });
        n
    }

    fn space_lines(&self) -> u64 {
        self.space
    }

    fn name(&self) -> &str {
        "raa"
    }

    // RAA is stateless: its cursor is the empty state.
    fn cursor_kind(&self) -> CursorKind {
        CursorKind::State
    }
}

/// Birthday Paradox Attack: pick a uniformly random logical line, write it
/// exactly `writes_per_target` times, pick the next.
///
/// `writes_per_target` models the attacker's dwell time. Seznec's analysis
/// assumes the attacker knows (or conservatively bounds) the wear-leveling
/// swap rate: dwelling a few swap periods extracts the most wear per target
/// while keeping targets numerous enough for birthday collisions. The paper
/// does not publish its dwell value; the experiment drivers default to
/// 4 × swap-period × region-size writes, and the ablation bench sweeps it.
#[derive(Debug, Clone)]
pub struct Bpa {
    rng: SmallRng,
    space: u64,
    writes_per_target: u64,
    current: u64,
    remaining: u64,
}

impl Bpa {
    /// Create an attack over `space` lines with the given dwell.
    pub fn new(space: u64, writes_per_target: u64, seed: u64) -> Self {
        assert!(space > 0, "empty address space");
        assert!(writes_per_target > 0, "dwell must be non-zero");
        let mut rng = SmallRng::seed_from_u64(seed);
        let current = rng.random_range(0..space);
        Self { rng, space, writes_per_target, current, remaining: writes_per_target }
    }

    /// The line currently being hammered.
    pub fn current_target(&self) -> u64 {
        self.current
    }
}

impl AddressStream for Bpa {
    #[inline]
    fn next_req(&mut self) -> MemReq {
        if self.remaining == 0 {
            self.current = self.rng.random_range(0..self.space);
            self.remaining = self.writes_per_target;
        }
        self.remaining -= 1;
        MemReq::write(self.current)
    }

    fn fill(&mut self, buf: &mut [MemReq]) -> usize {
        // The dwell structure makes whole runs of identical requests: emit
        // each run with a slice fill instead of request-at-a-time RNG
        // bookkeeping. Draw order matches `next_req` exactly (one draw per
        // target).
        let mut i = 0;
        while i < buf.len() {
            if self.remaining == 0 {
                self.current = self.rng.random_range(0..self.space);
                self.remaining = self.writes_per_target;
            }
            let run = self.remaining.min((buf.len() - i) as u64) as usize;
            buf[i..i + run].fill(MemReq::write(self.current));
            self.remaining -= run as u64;
            i += run;
        }
        buf.len()
    }

    fn fill_runs(&mut self, runs: &mut Vec<ReqRun>, scratch: &mut [MemReq]) -> u64 {
        // One `ReqRun` per dwell (or dwell fragment at the block budget
        // boundary): no request materialization, no scan — the run-level
        // pump costs O(1) per dwell instead of O(dwell).
        runs.clear();
        let budget = scratch.len() as u64;
        let mut total = 0;
        while total < budget {
            if self.remaining == 0 {
                self.current = self.rng.random_range(0..self.space);
                self.remaining = self.writes_per_target;
            }
            let run = self.remaining.min(budget - total);
            runs.push(ReqRun { la: self.current, write: true, len: run });
            self.remaining -= run;
            total += run;
        }
        total
    }

    fn space_lines(&self) -> u64 {
        self.space
    }

    fn name(&self) -> &str {
        "bpa"
    }

    fn cursor_kind(&self) -> CursorKind {
        CursorKind::State
    }

    fn cursor_save(&self, w: &mut sawl_ckpt::Writer) {
        w.put_rng(self.rng.state());
        w.put_u64(self.current);
        w.put_u64(self.remaining);
    }

    fn cursor_restore(&mut self, r: &mut sawl_ckpt::Reader) -> Result<(), sawl_ckpt::CkptError> {
        self.rng = SmallRng::from_state(r.get_rng()?);
        self.current = r.get_u64()?;
        self.remaining = r.get_u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raa_always_hits_the_target() {
        let mut raa = Raa::new(42, 100);
        for _ in 0..1000 {
            let r = raa.next_req();
            assert_eq!(r.la, 42);
            assert!(r.write);
        }
    }

    #[test]
    #[should_panic(expected = "outside space")]
    fn raa_rejects_out_of_range_target() {
        let _ = Raa::new(100, 100);
    }

    #[test]
    fn bpa_dwells_exactly_writes_per_target() {
        let mut bpa = Bpa::new(1 << 20, 16, 1);
        let first = bpa.next_req().la;
        for _ in 1..16 {
            assert_eq!(bpa.next_req().la, first);
        }
        // With a 2^20 space the chance the next target equals the previous
        // is negligible; assert it changed.
        assert_ne!(bpa.next_req().la, first);
    }

    #[test]
    fn bpa_is_deterministic_per_seed() {
        let collect = |seed| {
            let mut b = Bpa::new(1 << 16, 4, seed);
            (0..64).map(|_| b.next_req().la).collect::<Vec<_>>()
        };
        assert_eq!(collect(7), collect(7));
        assert_ne!(collect(7), collect(8));
    }

    #[test]
    fn bpa_targets_cover_the_space_uniformly() {
        let space = 64u64;
        let mut bpa = Bpa::new(space, 1, 3);
        let mut seen = vec![0u32; space as usize];
        for _ in 0..64 * 200 {
            seen[bpa.next_req().la as usize] += 1;
        }
        // Every line should be attacked at least once over 200 expected
        // visits each.
        assert!(seen.iter().all(|&c| c > 0));
        let max = *seen.iter().max().unwrap() as f64;
        let min = *seen.iter().min().unwrap() as f64;
        assert!(max / min < 3.0, "non-uniform targeting: min {min}, max {max}");
    }

    #[test]
    fn bpa_requests_are_all_writes_in_space() {
        let mut bpa = Bpa::new(128, 8, 5);
        for _ in 0..1024 {
            let r = bpa.next_req();
            assert!(r.write);
            assert!(r.la < 128);
        }
    }
}
