//! YCSB-style key-value service traffic: Zipf-skewed popularity over a
//! sliding hot set.
//!
//! Cloud serving benchmarks (YCSB and the services it models) draw keys
//! from a Zipf distribution, but the *identity* of the hot keys drifts as
//! sessions come and go. This generator reproduces that: requests are
//! Zipf-ranked within a `hot_lines`-line window, and every `rotate_every`
//! requests the window slides forward by `drift` lines (wrapping around
//! the space). A wear leveler that adapts its swap rate to the observed
//! write pressure — SAWL's self-adaptive loop — is exactly what this
//! drift stresses: yesterday's hot lines go cold while their accumulated
//! wear stays.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::zipf::Zipf;
use crate::{AddressStream, CursorKind, MemReq, ReqRun};

/// Zipf over a sliding hot window, rotating on a request clock.
#[derive(Debug, Clone)]
pub struct Ycsb {
    rng: SmallRng,
    zipf: Zipf,
    space: u64,
    hot_lines: u64,
    write_ratio: f64,
    rotate_every: u64,
    drift: u64,
    /// First line of the current hot window.
    start: u64,
    /// Requests left before the window slides.
    until_rotate: u64,
}

impl Ycsb {
    /// Zipf(`exponent`) traffic over a `hot_lines` window of `space`
    /// lines, sliding forward by `drift` lines every `rotate_every`
    /// requests; each request writes with probability `write_ratio`.
    pub fn new(
        space: u64,
        hot_lines: u64,
        exponent: f64,
        write_ratio: f64,
        rotate_every: u64,
        drift: u64,
        seed: u64,
    ) -> Self {
        assert!(space > 0, "empty address space");
        assert!(hot_lines > 0 && hot_lines <= space, "hot set must fit the space");
        assert!((0.0..=1.0).contains(&write_ratio));
        assert!(rotate_every > 0, "rotation clock must be non-zero");
        Self {
            rng: SmallRng::seed_from_u64(seed),
            zipf: Zipf::new(hot_lines, exponent),
            space,
            hot_lines,
            write_ratio,
            rotate_every,
            drift,
            start: 0,
            until_rotate: rotate_every,
        }
    }

    /// First line of the current hot window.
    pub fn window_start(&self) -> u64 {
        self.start
    }

    /// Size of the sliding hot window, in lines.
    pub fn hot_lines(&self) -> u64 {
        self.hot_lines
    }

    #[inline]
    fn gen_one(&mut self) -> MemReq {
        if self.until_rotate == 0 {
            self.start = (self.start + self.drift) % self.space;
            self.until_rotate = self.rotate_every;
        }
        self.until_rotate -= 1;
        let rank = self.zipf.sample(&mut self.rng);
        let la = (self.start + rank) % self.space;
        let write = self.rng.random::<f64>() < self.write_ratio;
        MemReq { la, write }
    }
}

impl AddressStream for Ycsb {
    #[inline]
    fn next_req(&mut self) -> MemReq {
        self.gen_one()
    }

    fn fill(&mut self, buf: &mut [MemReq]) -> usize {
        for slot in buf.iter_mut() {
            *slot = self.gen_one();
        }
        buf.len()
    }

    fn fill_runs(&mut self, runs: &mut Vec<ReqRun>, scratch: &mut [MemReq]) -> u64 {
        // Zipf's head ranks repeat back to back, so coalesce directly off
        // the sampler (same draws, same order as `next_req`) instead of
        // materializing the block and re-scanning it.
        runs.clear();
        let mut cur: Option<ReqRun> = None;
        for _ in 0..scratch.len() {
            let req = self.gen_one();
            match &mut cur {
                Some(run) if run.la == req.la && run.write == req.write => run.len += 1,
                _ => {
                    if let Some(run) = cur.replace(ReqRun { la: req.la, write: req.write, len: 1 })
                    {
                        runs.push(run);
                    }
                }
            }
        }
        if let Some(run) = cur {
            runs.push(run);
        }
        scratch.len() as u64
    }

    fn space_lines(&self) -> u64 {
        self.space
    }

    fn name(&self) -> &str {
        "ycsb"
    }

    fn cursor_kind(&self) -> CursorKind {
        CursorKind::State
    }

    fn cursor_save(&self, w: &mut sawl_ckpt::Writer) {
        w.put_rng(self.rng.state());
        w.put_u64(self.start);
        w.put_u64(self.until_rotate);
    }

    fn cursor_restore(&mut self, r: &mut sawl_ckpt::Reader) -> Result<(), sawl_ckpt::CkptError> {
        self.rng = SmallRng::from_state(r.get_rng()?);
        self.start = r.get_u64()?;
        self.until_rotate = r.get_u64()?;
        if self.start >= self.space {
            return Err(sawl_ckpt::CkptError::Corrupt(format!(
                "ycsb window start {} outside space {}",
                self.start, self.space
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stays_in_space_and_skews_toward_the_window_head() {
        let mut y = Ycsb::new(1 << 12, 256, 1.1, 0.8, 10_000, 64, 7);
        let mut head = 0usize;
        let total = 8_000;
        for _ in 0..total {
            let r = y.next_req();
            assert!(r.la < 1 << 12);
            // Within the first window (no rotation yet at < 10k requests),
            // the head ranks are lines 0..16.
            head += usize::from(r.la < 16);
        }
        assert!(head as f64 / total as f64 > 0.3, "head fraction {head}/{total}");
    }

    #[test]
    fn window_slides_on_the_request_clock() {
        let mut y = Ycsb::new(1 << 10, 32, 1.2, 1.0, 100, 8, 3);
        assert_eq!(y.window_start(), 0);
        for _ in 0..100 {
            y.next_req();
        }
        // The 101st request observes the rotated window.
        y.next_req();
        assert_eq!(y.window_start(), 8);
    }

    #[test]
    fn window_wraps_around_the_space() {
        let mut y = Ycsb::new(64, 16, 1.0, 1.0, 1, 48, 1);
        for _ in 0..200 {
            let r = y.next_req();
            assert!(r.la < 64);
        }
    }

    #[test]
    fn cursor_round_trips() {
        let mut reference = Ycsb::new(1 << 10, 64, 1.1, 0.6, 57, 16, 9);
        for _ in 0..123 {
            reference.next_req();
        }
        let mut w = sawl_ckpt::Writer::new();
        reference.cursor_save(&mut w);
        let payload = w.into_payload();
        let mut restored = Ycsb::new(1 << 10, 64, 1.1, 0.6, 57, 16, 9);
        let mut r = sawl_ckpt::Reader::new(&payload);
        restored.cursor_restore(&mut r).unwrap();
        r.finish().unwrap();
        for i in 0..500 {
            assert_eq!(restored.next_req(), reference.next_req(), "diverged at {i}");
        }
    }
}
