//! Synthetic SPEC-CPU2006-like workload models.
//!
//! The paper drives its performance and general-application lifetime
//! experiments with 14 SPEC CPU2006 benchmarks traced through gem5. SPEC is
//! proprietary and gem5 is out of scope, so each benchmark is modelled here
//! as a parameterized address-stream generator (the substitution is
//! documented in DESIGN.md §5). A model is characterized by:
//!
//! * **footprint** — fraction of the logical address space the benchmark
//!   touches (its resident working set at line granularity);
//! * **Zipf skew** over hot *blocks* — popularity concentration; blocks of
//!   `locality_block` lines model spatial locality (a hot structure spans
//!   neighbouring lines, not one line);
//! * **scan fraction** — portion of requests issued by a cyclic sequential
//!   walk (streaming kernels: libquantum, lbm, leslie3d);
//! * **write ratio** — fraction of requests that are writes;
//! * **phases** — optional alternation between locality regimes with
//!   working-set drift, which is what makes soplex's cache hit rate swing in
//!   the paper's Figs. 12–14.
//!
//! Parameters are chosen so the qualitative classes the paper reports hold:
//! bzip2/milc/namd are cache-friendly; gcc/cactusADM spread fine-grained
//! entries thin but behave at coarse granularity; gromacs/hmmer concentrate
//! writes on a tiny footprint (their lifetime collapses without good wear
//! leveling); soplex alternates phases.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::zipf::Zipf;
use crate::{AddressStream, CursorKind, MemReq};

/// Multiplier for the block-scatter bijection (odd => invertible mod 2^k).
const SCATTER_MULT: u64 = 0x9E37_79B9_7F4A_7C15;

/// The 14 SPEC CPU2006 applications the paper evaluates (§4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum SpecBenchmark {
    Bzip2,
    Gcc,
    Mcf,
    Milc,
    Gromacs,
    CactusADM,
    Leslie3d,
    Namd,
    Gobmk,
    Soplex,
    Hmmer,
    Sjeng,
    Libquantum,
    Lbm,
}

/// All 14 benchmarks in the order of the paper's Fig. 16/17 x-axis.
pub const ALL_BENCHMARKS: [SpecBenchmark; 14] = [
    SpecBenchmark::Bzip2,
    SpecBenchmark::Gcc,
    SpecBenchmark::Mcf,
    SpecBenchmark::Milc,
    SpecBenchmark::Gromacs,
    SpecBenchmark::CactusADM,
    SpecBenchmark::Leslie3d,
    SpecBenchmark::Namd,
    SpecBenchmark::Gobmk,
    SpecBenchmark::Soplex,
    SpecBenchmark::Hmmer,
    SpecBenchmark::Sjeng,
    SpecBenchmark::Libquantum,
    SpecBenchmark::Lbm,
];

/// One locality regime of a benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PhaseParams {
    /// Fraction of the benchmark footprint active in this phase (0, 1].
    pub active_frac: f64,
    /// Zipf exponent over hot blocks within the active set.
    pub zipf_s: f64,
    /// Probability a request is drawn from the Zipf-hot distribution (the
    /// remainder minus `scan_frac` is uniform over the active set).
    pub hot_frac: f64,
    /// Probability a request comes from the sequential scanner.
    pub scan_frac: f64,
    /// Probability a request is a write.
    pub write_ratio: f64,
}

/// Static description of a benchmark model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpecParams {
    /// Benchmark name as used on the paper's axes.
    pub name: &'static str,
    /// Fraction of the logical address space the benchmark touches.
    pub footprint_frac: f64,
    /// Spatial-locality block size in lines (hot blocks, not hot lines).
    pub locality_block: u64,
    /// Locality regimes; a single entry means a stationary workload.
    pub phases: Vec<PhaseParams>,
    /// Requests per phase before switching (ignored for single-phase).
    pub phase_len: u64,
    /// Whether the hot-set scatter drifts at each phase switch, modelling a
    /// moving working set.
    pub drift: bool,
    /// CPU-side characteristics for the timing model: average non-memory
    /// cycles per instruction and memory requests (post-L2) per
    /// kilo-instruction. These govern how sensitive the benchmark's IPC is
    /// to added memory latency.
    pub base_cpi: f64,
    /// Post-L2 memory requests per 1000 instructions.
    pub mem_per_kilo_instr: f64,
}

impl SpecBenchmark {
    /// Name as printed on the paper's figure axes.
    pub fn name(self) -> &'static str {
        self.params().name
    }

    /// Parse from the paper's benchmark name (case-insensitive).
    pub fn from_name(s: &str) -> Option<Self> {
        let lower = s.to_ascii_lowercase();
        ALL_BENCHMARKS.iter().copied().find(|b| b.name().to_ascii_lowercase() == lower)
    }

    /// The model parameters for this benchmark. Values are the reproduction
    /// suite's calibration, not SPEC measurements; see module docs.
    pub fn params(self) -> SpecParams {
        use SpecBenchmark::*;
        let one = |active_frac, zipf_s, hot_frac, scan_frac, write_ratio| {
            vec![PhaseParams { active_frac, zipf_s, hot_frac, scan_frac, write_ratio }]
        };
        match self {
            Bzip2 => SpecParams {
                name: "bzip2",
                footprint_frac: 0.02,
                locality_block: 32,
                phases: one(1.0, 1.1, 0.75, 0.15, 0.35),
                phase_len: 0,
                drift: false,
                base_cpi: 0.8,
                mem_per_kilo_instr: 6.0,
            },
            Gcc => SpecParams {
                name: "gcc",
                footprint_frac: 0.10,
                locality_block: 16,
                phases: one(1.0, 0.8, 0.55, 0.35, 0.40),
                phase_len: 0,
                drift: false,
                base_cpi: 0.9,
                mem_per_kilo_instr: 9.0,
            },
            Mcf => SpecParams {
                name: "mcf",
                footprint_frac: 0.18,
                locality_block: 4,
                phases: one(1.0, 0.7, 0.55, 0.05, 0.25),
                phase_len: 0,
                drift: false,
                base_cpi: 0.6,
                mem_per_kilo_instr: 40.0,
            },
            Milc => SpecParams {
                name: "milc",
                footprint_frac: 0.012,
                locality_block: 64,
                phases: one(1.0, 1.2, 0.65, 0.30, 0.30),
                phase_len: 0,
                drift: false,
                base_cpi: 0.7,
                mem_per_kilo_instr: 12.0,
            },
            Gromacs => SpecParams {
                name: "gromacs",
                footprint_frac: 0.002,
                locality_block: 8,
                phases: one(1.0, 1.4, 0.90, 0.02, 0.45),
                phase_len: 0,
                drift: false,
                base_cpi: 0.8,
                mem_per_kilo_instr: 5.0,
            },
            CactusADM => SpecParams {
                name: "cactusADM",
                footprint_frac: 0.08,
                locality_block: 16,
                phases: one(1.0, 0.9, 0.50, 0.30, 0.40),
                phase_len: 0,
                drift: false,
                base_cpi: 0.7,
                mem_per_kilo_instr: 15.0,
            },
            Leslie3d => SpecParams {
                name: "leslie3d",
                footprint_frac: 0.06,
                locality_block: 32,
                phases: one(1.0, 0.8, 0.35, 0.50, 0.35),
                phase_len: 0,
                drift: false,
                base_cpi: 0.7,
                mem_per_kilo_instr: 18.0,
            },
            Namd => SpecParams {
                name: "namd",
                footprint_frac: 0.008,
                locality_block: 16,
                phases: one(1.0, 1.0, 0.75, 0.10, 0.30),
                phase_len: 0,
                drift: false,
                base_cpi: 0.9,
                mem_per_kilo_instr: 3.0,
            },
            Gobmk => SpecParams {
                name: "gobmk",
                footprint_frac: 0.03,
                locality_block: 8,
                phases: one(1.0, 1.0, 0.65, 0.10, 0.30),
                phase_len: 0,
                drift: false,
                base_cpi: 1.0,
                mem_per_kilo_instr: 4.0,
            },
            Soplex => SpecParams {
                name: "soplex",
                footprint_frac: 0.12,
                locality_block: 16,
                // Alternates between a compact pricing phase (high locality)
                // and a scattered factorization phase (poor locality); the
                // working set drifts each switch. This produces the hit-rate
                // swings of Figs. 12-14.
                phases: vec![
                    PhaseParams {
                        active_frac: 0.04,
                        zipf_s: 1.2,
                        hot_frac: 0.85,
                        scan_frac: 0.10,
                        write_ratio: 0.30,
                    },
                    PhaseParams {
                        active_frac: 1.0,
                        zipf_s: 0.6,
                        hot_frac: 0.40,
                        scan_frac: 0.15,
                        write_ratio: 0.35,
                    },
                ],
                phase_len: 6_000_000,
                drift: true,
                base_cpi: 0.7,
                mem_per_kilo_instr: 25.0,
            },
            Hmmer => SpecParams {
                name: "hmmer",
                footprint_frac: 0.001,
                locality_block: 8,
                phases: one(1.0, 1.3, 0.92, 0.04, 0.50),
                phase_len: 0,
                drift: false,
                base_cpi: 0.9,
                mem_per_kilo_instr: 4.0,
            },
            Sjeng => SpecParams {
                name: "sjeng",
                footprint_frac: 0.15,
                locality_block: 4,
                phases: one(1.0, 0.6, 0.50, 0.02, 0.30),
                phase_len: 0,
                drift: false,
                base_cpi: 1.0,
                mem_per_kilo_instr: 5.0,
            },
            Libquantum => SpecParams {
                name: "libquantum",
                footprint_frac: 0.05,
                locality_block: 64,
                phases: one(1.0, 0.8, 0.15, 0.80, 0.40),
                phase_len: 0,
                drift: false,
                base_cpi: 0.5,
                mem_per_kilo_instr: 30.0,
            },
            Lbm => SpecParams {
                name: "lbm",
                footprint_frac: 0.15,
                locality_block: 64,
                phases: one(1.0, 0.7, 0.20, 0.70, 0.55),
                phase_len: 0,
                drift: false,
                base_cpi: 0.5,
                mem_per_kilo_instr: 35.0,
            },
        }
    }

    /// Instantiate the generator over `space` lines with a seed.
    pub fn stream(self, space: u64, seed: u64) -> SpecModel {
        SpecModel::new(self, space, seed)
    }
}

/// Per-phase runtime state (Zipf sampler sized to the phase's active set).
#[derive(Debug, Clone)]
struct PhaseState {
    params: PhaseParams,
    zipf: Zipf,
    /// Active blocks in this phase.
    active_blocks: u64,
}

/// Instantiated SPEC-like address-stream generator.
#[derive(Debug, Clone)]
pub struct SpecModel {
    bench: SpecBenchmark,
    space: u64,
    /// Footprint in lines, rounded to a power of two >= locality_block.
    footprint: u64,
    block: u64,
    phases: Vec<PhaseState>,
    phase_len: u64,
    drift: bool,
    cur_phase: usize,
    until_switch: u64,
    /// Drift offset applied to the block scatter, in blocks.
    drift_offset: u64,
    scan_pos: u64,
    rng: SmallRng,
}

impl SpecModel {
    /// Build the model for `bench` over a `space`-line logical address
    /// space. `space` must be a power of two of at least 2^10 lines.
    pub fn new(bench: SpecBenchmark, space: u64, seed: u64) -> Self {
        assert!(
            space.is_power_of_two() && space >= 1 << 10,
            "space must be a power of two >= 1024"
        );
        let p = bench.params();
        let want = (space as f64 * p.footprint_frac) as u64;
        let footprint = want.next_power_of_two().clamp(p.locality_block * 4, space);
        let block = p.locality_block;
        let blocks = footprint / block;
        let phases = p
            .phases
            .iter()
            .map(|&params| {
                let active_blocks = ((blocks as f64 * params.active_frac) as u64)
                    .max(1)
                    .next_power_of_two()
                    .min(blocks);
                PhaseState { params, zipf: Zipf::new(active_blocks, params.zipf_s), active_blocks }
            })
            .collect::<Vec<_>>();
        let until_switch = if phases.len() > 1 { p.phase_len } else { u64::MAX };
        Self {
            bench,
            space,
            footprint,
            block,
            phases,
            phase_len: p.phase_len,
            drift: p.drift,
            cur_phase: 0,
            until_switch,
            drift_offset: 0,
            scan_pos: 0,
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// The benchmark this model instantiates.
    pub fn benchmark(&self) -> SpecBenchmark {
        self.bench
    }

    /// Footprint in lines actually used after rounding.
    pub fn footprint_lines(&self) -> u64 {
        self.footprint
    }

    /// Index of the phase currently generating requests.
    pub fn current_phase(&self) -> usize {
        self.cur_phase
    }

    /// Scatter a block rank into a block index within the footprint: an
    /// invertible multiply-mod-2^k so hot ranks land far apart, plus the
    /// drift offset.
    #[inline]
    fn scatter_block(&self, rank: u64, blocks_mask: u64) -> u64 {
        (rank.wrapping_mul(SCATTER_MULT).wrapping_add(self.drift_offset)) & blocks_mask
    }
}

impl SpecModel {
    /// Generate one request; shared by the scalar and batched paths so the
    /// two are bit-identical by construction.
    #[inline]
    fn gen_one(&mut self) -> MemReq {
        if self.until_switch == 0 {
            self.cur_phase = (self.cur_phase + 1) % self.phases.len();
            self.until_switch = self.phase_len;
            if self.drift {
                self.drift_offset = self.rng.random::<u64>();
            }
        }
        self.until_switch = self.until_switch.saturating_sub(1);

        let blocks_mask = self.footprint / self.block - 1;
        let phase = &self.phases[self.cur_phase];
        let u = self.rng.random::<f64>();
        let la = if u < phase.params.scan_frac {
            // Sequential scan over the whole footprint.
            let la = self.scan_pos;
            self.scan_pos = (self.scan_pos + 1) & (self.footprint - 1);
            la
        } else if u < phase.params.scan_frac + phase.params.hot_frac {
            // Zipf-hot block, uniform line within the block.
            let rank = phase.zipf.sample(&mut self.rng);
            let block = self.scatter_block(rank, blocks_mask);
            block * self.block + self.rng.random_range(0..self.block)
        } else {
            // Uniform over the phase's active set (scattered like the hot
            // set so the two regimes overlap).
            let rank = self.rng.random_range(0..phase.active_blocks);
            let block = self.scatter_block(rank, blocks_mask);
            block * self.block + self.rng.random_range(0..self.block)
        };
        let write = self.rng.random::<f64>() < phase.params.write_ratio;
        MemReq { la, write }
    }
}

impl AddressStream for SpecModel {
    #[inline]
    fn next_req(&mut self) -> MemReq {
        self.gen_one()
    }

    fn fill(&mut self, buf: &mut [MemReq]) -> usize {
        // One statically-dispatched loop per block; `gen_one` inlines here.
        for slot in buf.iter_mut() {
            *slot = self.gen_one();
        }
        buf.len()
    }

    fn space_lines(&self) -> u64 {
        self.space
    }

    fn name(&self) -> &str {
        self.bench.name()
    }

    fn cursor_kind(&self) -> CursorKind {
        CursorKind::State
    }

    fn cursor_save(&self, w: &mut sawl_ckpt::Writer) {
        w.put_rng(self.rng.state());
        w.put_u64(self.cur_phase as u64);
        w.put_u64(self.until_switch);
        w.put_u64(self.drift_offset);
        w.put_u64(self.scan_pos);
    }

    fn cursor_restore(&mut self, r: &mut sawl_ckpt::Reader) -> Result<(), sawl_ckpt::CkptError> {
        self.rng = SmallRng::from_state(r.get_rng()?);
        let cur_phase = r.get_u64()? as usize;
        if cur_phase >= self.phases.len() {
            return Err(sawl_ckpt::CkptError::Corrupt(format!(
                "spec-model phase cursor {cur_phase} past the {}-phase model",
                self.phases.len()
            )));
        }
        self.cur_phase = cur_phase;
        self.until_switch = r.get_u64()?;
        self.drift_offset = r.get_u64()?;
        self.scan_pos = r.get_u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    const SPACE: u64 = 1 << 20;

    #[test]
    fn all_benchmarks_instantiate_and_stay_in_space() {
        for b in ALL_BENCHMARKS {
            let mut m = b.stream(SPACE, 1);
            for _ in 0..10_000 {
                let r = m.next_req();
                assert!(r.la < SPACE, "{}: {} out of space", b.name(), r.la);
            }
        }
    }

    #[test]
    fn from_name_round_trips() {
        for b in ALL_BENCHMARKS {
            assert_eq!(SpecBenchmark::from_name(b.name()), Some(b));
        }
        assert_eq!(SpecBenchmark::from_name("CACTUSadm"), Some(SpecBenchmark::CactusADM));
        assert_eq!(SpecBenchmark::from_name("nope"), None);
    }

    #[test]
    fn footprints_order_matches_params() {
        let small = SpecBenchmark::Hmmer.stream(SPACE, 1).footprint_lines();
        let large = SpecBenchmark::Mcf.stream(SPACE, 1).footprint_lines();
        assert!(small < large, "hmmer {small} !< mcf {large}");
    }

    #[test]
    fn gromacs_concentrates_writes() {
        // The paper singles out gromacs/hmmer as concentrating writes on a
        // small fraction of the space.
        let mut m = SpecBenchmark::Gromacs.stream(SPACE, 2);
        let mut writes: HashSet<u64> = HashSet::new();
        let mut n_writes = 0u64;
        for _ in 0..200_000 {
            let r = m.next_req();
            if r.write {
                writes.insert(r.la);
                n_writes += 1;
            }
        }
        assert!(n_writes > 50_000);
        let unique_frac = writes.len() as f64 / SPACE as f64;
        assert!(unique_frac < 0.01, "gromacs touched {unique_frac} of space");
    }

    #[test]
    fn mcf_touches_much_more_than_gromacs() {
        let touched = |b: SpecBenchmark| {
            let mut m = b.stream(SPACE, 3);
            let mut seen: HashSet<u64> = HashSet::new();
            for _ in 0..200_000 {
                seen.insert(m.next_req().la);
            }
            seen.len()
        };
        assert!(touched(SpecBenchmark::Mcf) > 10 * touched(SpecBenchmark::Gromacs));
    }

    #[test]
    fn soplex_switches_phases() {
        let mut m = SpecBenchmark::Soplex.stream(SPACE, 4);
        assert_eq!(m.current_phase(), 0);
        let phase_len = SpecBenchmark::Soplex.params().phase_len;
        for _ in 0..phase_len + 1 {
            m.next_req();
        }
        assert_eq!(m.current_phase(), 1);
    }

    #[test]
    fn write_ratio_is_respected() {
        let mut m = SpecBenchmark::Lbm.stream(SPACE, 5);
        let writes = (0..100_000).filter(|_| m.next_req().write).count();
        let ratio = writes as f64 / 100_000.0;
        assert!((ratio - 0.55).abs() < 0.02, "lbm write ratio {ratio}");
    }

    #[test]
    fn determinism_per_seed() {
        let take = |seed| {
            let mut m = SpecBenchmark::Gcc.stream(SPACE, seed);
            (0..256).map(|_| m.next_req()).collect::<Vec<_>>()
        };
        assert_eq!(take(9), take(9));
        assert_ne!(take(9), take(10));
    }

    #[test]
    fn libquantum_is_scan_dominated() {
        let mut m = SpecBenchmark::Libquantum.stream(SPACE, 6);
        // Count strictly-sequential successor pairs.
        let mut prev = m.next_req().la;
        let mut seq = 0;
        let total = 50_000;
        for _ in 0..total {
            let la = m.next_req().la;
            if la == (prev + 1) & (m.footprint_lines() - 1) {
                seq += 1;
            }
            prev = la;
        }
        // With 80% scan traffic, ~64% of adjacent pairs are scan-scan.
        assert!(seq as f64 / total as f64 > 0.5, "sequential pairs {seq}/{total}");
    }
}
