//! Elementary access patterns: uniform random, Zipf-popular, sequential
//! scan, strided walk, and hotspot. These are the building blocks the
//! SPEC-like models compose, and they double as well-understood unit-test
//! workloads.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::zipf::Zipf;
use crate::{AddressStream, CursorKind, MemReq};

/// Uniform random accesses over the whole space.
#[derive(Debug, Clone)]
pub struct Uniform {
    rng: SmallRng,
    space: u64,
    write_ratio: f64,
}

impl Uniform {
    /// Uniform stream over `space` lines; each request is a write with
    /// probability `write_ratio`.
    pub fn new(space: u64, write_ratio: f64, seed: u64) -> Self {
        assert!(space > 0);
        assert!((0.0..=1.0).contains(&write_ratio));
        Self { rng: SmallRng::seed_from_u64(seed), space, write_ratio }
    }
}

impl AddressStream for Uniform {
    #[inline]
    fn next_req(&mut self) -> MemReq {
        let la = self.rng.random_range(0..self.space);
        let write = self.rng.random::<f64>() < self.write_ratio;
        MemReq { la, write }
    }

    fn fill(&mut self, buf: &mut [MemReq]) -> usize {
        // Same draws in the same order as `next_req`, with the space and
        // ratio hoisted into registers for the whole block.
        let space = self.space;
        let write_ratio = self.write_ratio;
        let rng = &mut self.rng;
        for slot in buf.iter_mut() {
            let la = rng.random_range(0..space);
            let write = rng.random::<f64>() < write_ratio;
            *slot = MemReq { la, write };
        }
        buf.len()
    }

    fn space_lines(&self) -> u64 {
        self.space
    }

    fn name(&self) -> &str {
        "uniform"
    }

    fn cursor_kind(&self) -> CursorKind {
        CursorKind::State
    }

    fn cursor_save(&self, w: &mut sawl_ckpt::Writer) {
        w.put_rng(self.rng.state());
    }

    fn cursor_restore(&mut self, r: &mut sawl_ckpt::Reader) -> Result<(), sawl_ckpt::CkptError> {
        self.rng = SmallRng::from_state(r.get_rng()?);
        Ok(())
    }
}

/// Zipf-popular accesses: each request draws a line by Zipf rank
/// (P(line = k) ∝ 1/(k+1)^s), the heavy-tailed popularity profile of real
/// application heaps. Rank r maps to line r directly — wear-leveling
/// permutations spread the hot lines physically, so no extra scrambling is
/// warranted here.
#[derive(Debug, Clone)]
pub struct ZipfStream {
    rng: SmallRng,
    zipf: Zipf,
    space: u64,
    write_ratio: f64,
}

impl ZipfStream {
    /// Zipf stream over `space` lines with exponent `exponent > 0`; each
    /// request is a write with probability `write_ratio`.
    pub fn new(space: u64, exponent: f64, write_ratio: f64, seed: u64) -> Self {
        assert!(space > 0);
        assert!((0.0..=1.0).contains(&write_ratio));
        Self {
            rng: SmallRng::seed_from_u64(seed),
            zipf: Zipf::new(space, exponent),
            space,
            write_ratio,
        }
    }
}

impl AddressStream for ZipfStream {
    #[inline]
    fn next_req(&mut self) -> MemReq {
        let la = self.zipf.sample(&mut self.rng);
        let write = self.rng.random::<f64>() < self.write_ratio;
        MemReq { la, write }
    }

    fn fill(&mut self, buf: &mut [MemReq]) -> usize {
        // Same draws in the same order as `next_req`, with the sampler and
        // ratio hoisted for the whole block.
        let zipf = &self.zipf;
        let write_ratio = self.write_ratio;
        let rng = &mut self.rng;
        for slot in buf.iter_mut() {
            let la = zipf.sample(rng);
            let write = rng.random::<f64>() < write_ratio;
            *slot = MemReq { la, write };
        }
        buf.len()
    }

    fn fill_runs(&mut self, runs: &mut Vec<crate::ReqRun>, scratch: &mut [MemReq]) -> u64 {
        // Zipf's head ranks repeat back to back often enough that the
        // batched drivers win real run lengths; coalesce directly off the
        // sampler (same two draws per request, same order as `next_req`)
        // instead of materializing the block and re-scanning it.
        runs.clear();
        let zipf = &self.zipf;
        let write_ratio = self.write_ratio;
        let rng = &mut self.rng;
        let mut cur: Option<crate::ReqRun> = None;
        for _ in 0..scratch.len() {
            let la = zipf.sample(rng);
            let write = rng.random::<f64>() < write_ratio;
            match &mut cur {
                Some(run) if run.la == la && run.write == write => run.len += 1,
                _ => {
                    if let Some(run) = cur.replace(crate::ReqRun { la, write, len: 1 }) {
                        runs.push(run);
                    }
                }
            }
        }
        if let Some(run) = cur {
            runs.push(run);
        }
        scratch.len() as u64
    }

    fn space_lines(&self) -> u64 {
        self.space
    }

    fn name(&self) -> &str {
        "zipf"
    }

    fn cursor_kind(&self) -> CursorKind {
        CursorKind::State
    }

    fn cursor_save(&self, w: &mut sawl_ckpt::Writer) {
        w.put_rng(self.rng.state());
    }

    fn cursor_restore(&mut self, r: &mut sawl_ckpt::Reader) -> Result<(), sawl_ckpt::CkptError> {
        self.rng = SmallRng::from_state(r.get_rng()?);
        Ok(())
    }
}

/// Sequential scan: walks `base..base+len` cyclically, one line at a time.
#[derive(Debug, Clone)]
pub struct SeqScan {
    rng: SmallRng,
    space: u64,
    base: u64,
    len: u64,
    pos: u64,
    write_ratio: f64,
}

impl SeqScan {
    /// Scan `len` lines starting at `base` (wrapping within the window).
    pub fn new(space: u64, base: u64, len: u64, write_ratio: f64, seed: u64) -> Self {
        assert!(len > 0 && base + len <= space, "scan window out of range");
        assert!((0.0..=1.0).contains(&write_ratio));
        Self { rng: SmallRng::seed_from_u64(seed), space, base, len, pos: 0, write_ratio }
    }
}

impl AddressStream for SeqScan {
    #[inline]
    fn next_req(&mut self) -> MemReq {
        let la = self.base + self.pos;
        self.pos = (self.pos + 1) % self.len;
        let write = self.rng.random::<f64>() < self.write_ratio;
        MemReq { la, write }
    }

    fn space_lines(&self) -> u64 {
        self.space
    }

    fn name(&self) -> &str {
        "seqscan"
    }

    fn cursor_kind(&self) -> CursorKind {
        CursorKind::State
    }

    fn cursor_save(&self, w: &mut sawl_ckpt::Writer) {
        w.put_rng(self.rng.state());
        w.put_u64(self.pos);
    }

    fn cursor_restore(&mut self, r: &mut sawl_ckpt::Reader) -> Result<(), sawl_ckpt::CkptError> {
        self.rng = SmallRng::from_state(r.get_rng()?);
        self.pos = r.get_u64()?;
        Ok(())
    }
}

/// Strided walk: visits `base + k*stride (mod window)`, modelling
/// column-major sweeps and pointer-chasing with fixed skip.
#[derive(Debug, Clone)]
pub struct Stride {
    rng: SmallRng,
    space: u64,
    base: u64,
    window: u64,
    stride: u64,
    pos: u64,
    write_ratio: f64,
}

impl Stride {
    /// Walk a `window`-line region starting at `base` with the given stride.
    pub fn new(
        space: u64,
        base: u64,
        window: u64,
        stride: u64,
        write_ratio: f64,
        seed: u64,
    ) -> Self {
        assert!(window > 0 && base + window <= space, "stride window out of range");
        assert!(stride > 0, "stride must be non-zero");
        assert!((0.0..=1.0).contains(&write_ratio));
        Self {
            rng: SmallRng::seed_from_u64(seed),
            space,
            base,
            window,
            stride,
            pos: 0,
            write_ratio,
        }
    }
}

impl AddressStream for Stride {
    #[inline]
    fn next_req(&mut self) -> MemReq {
        let la = self.base + self.pos;
        self.pos = (self.pos + self.stride) % self.window;
        let write = self.rng.random::<f64>() < self.write_ratio;
        MemReq { la, write }
    }

    fn space_lines(&self) -> u64 {
        self.space
    }

    fn name(&self) -> &str {
        "stride"
    }

    fn cursor_kind(&self) -> CursorKind {
        CursorKind::State
    }

    fn cursor_save(&self, w: &mut sawl_ckpt::Writer) {
        w.put_rng(self.rng.state());
        w.put_u64(self.pos);
    }

    fn cursor_restore(&mut self, r: &mut sawl_ckpt::Reader) -> Result<(), sawl_ckpt::CkptError> {
        self.rng = SmallRng::from_state(r.get_rng()?);
        self.pos = r.get_u64()?;
        Ok(())
    }
}

/// Hotspot: a fraction of requests hits a small hot window uniformly, the
/// rest spread uniformly over the whole space (the classic 90/10 pattern).
#[derive(Debug, Clone)]
pub struct Hotspot {
    rng: SmallRng,
    space: u64,
    hot_base: u64,
    hot_len: u64,
    hot_prob: f64,
    write_ratio: f64,
}

impl Hotspot {
    /// `hot_prob` of requests land in `[hot_base, hot_base+hot_len)`.
    pub fn new(
        space: u64,
        hot_base: u64,
        hot_len: u64,
        hot_prob: f64,
        write_ratio: f64,
        seed: u64,
    ) -> Self {
        assert!(hot_len > 0 && hot_base + hot_len <= space, "hot window out of range");
        assert!((0.0..=1.0).contains(&hot_prob));
        assert!((0.0..=1.0).contains(&write_ratio));
        Self { rng: SmallRng::seed_from_u64(seed), space, hot_base, hot_len, hot_prob, write_ratio }
    }
}

impl AddressStream for Hotspot {
    #[inline]
    fn next_req(&mut self) -> MemReq {
        let la = if self.rng.random::<f64>() < self.hot_prob {
            self.hot_base + self.rng.random_range(0..self.hot_len)
        } else {
            self.rng.random_range(0..self.space)
        };
        let write = self.rng.random::<f64>() < self.write_ratio;
        MemReq { la, write }
    }

    fn space_lines(&self) -> u64 {
        self.space
    }

    fn name(&self) -> &str {
        "hotspot"
    }

    fn cursor_kind(&self) -> CursorKind {
        CursorKind::State
    }

    fn cursor_save(&self, w: &mut sawl_ckpt::Writer) {
        w.put_rng(self.rng.state());
    }

    fn cursor_restore(&mut self, r: &mut sawl_ckpt::Reader) -> Result<(), sawl_ckpt::CkptError> {
        self.rng = SmallRng::from_state(r.get_rng()?);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_covers_space() {
        let mut u = Uniform::new(16, 0.5, 1);
        let mut seen = [false; 16];
        for _ in 0..2000 {
            let r = u.next_req();
            assert!(r.la < 16);
            seen[r.la as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn uniform_write_ratio_respected() {
        let mut u = Uniform::new(1024, 0.3, 2);
        let writes = (0..100_000).filter(|_| u.next_req().write).count();
        let ratio = writes as f64 / 100_000.0;
        assert!((ratio - 0.3).abs() < 0.01, "write ratio {ratio}");
    }

    #[test]
    fn seqscan_wraps_within_window() {
        let mut s = SeqScan::new(100, 10, 5, 1.0, 0);
        let addrs: Vec<u64> = (0..12).map(|_| s.next_req().la).collect();
        assert_eq!(addrs, vec![10, 11, 12, 13, 14, 10, 11, 12, 13, 14, 10, 11]);
    }

    #[test]
    fn stride_visits_expected_sequence() {
        let mut s = Stride::new(100, 0, 8, 3, 1.0, 0);
        let addrs: Vec<u64> = (0..8).map(|_| s.next_req().la).collect();
        // 0, 3, 6, 1 (9 mod 8), 4, 7, 2 (10 mod 8 -> 2), 5
        assert_eq!(addrs, vec![0, 3, 6, 1, 4, 7, 2, 5]);
    }

    #[test]
    fn stride_coprime_covers_window() {
        let mut s = Stride::new(64, 0, 16, 5, 1.0, 0);
        let mut seen = [false; 16];
        for _ in 0..16 {
            seen[s.next_req().la as usize] = true;
        }
        assert!(seen.iter().all(|&x| x));
    }

    #[test]
    fn hotspot_concentrates_requests() {
        let mut h = Hotspot::new(1 << 16, 0, 64, 0.9, 1.0, 3);
        let total = 50_000;
        let hot = (0..total).filter(|_| h.next_req().la < 64).count();
        let frac = hot as f64 / total as f64;
        // 0.9 hot probability plus the sliver of cold traffic landing there.
        assert!((frac - 0.9).abs() < 0.01, "hot fraction {frac}");
    }

    #[test]
    fn zipf_stream_skews_toward_low_ranks() {
        let mut z = ZipfStream::new(1 << 10, 1.0, 1.0, 7);
        let total = 50_000;
        let mut low = 0usize;
        for _ in 0..total {
            let r = z.next_req();
            assert!(r.la < 1 << 10);
            assert!(r.write);
            low += usize::from(r.la < 16);
        }
        // The 16 hottest of 1024 lines draw far more than their 1.6%
        // uniform share under s=1.0 (analytically ~45%).
        let frac = low as f64 / total as f64;
        assert!(frac > 0.35, "hot fraction {frac}");
    }

    #[test]
    fn zipf_stream_fill_matches_next_req() {
        let mut a = ZipfStream::new(256, 1.2, 0.4, 11);
        let mut b = ZipfStream::new(256, 1.2, 0.4, 11);
        let mut buf = [MemReq::read(0); 300];
        a.fill(&mut buf);
        for (i, slot) in buf.iter().enumerate() {
            assert_eq!(*slot, b.next_req(), "request {i}");
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn seqscan_rejects_overflowing_window() {
        let _ = SeqScan::new(10, 8, 5, 0.5, 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn hotspot_rejects_overflowing_window() {
        let _ = Hotspot::new(10, 8, 5, 0.5, 0.5, 0);
    }
}
