//! Zipf-distributed rank sampling.
//!
//! Memory-access popularity in real applications is heavy-tailed; the
//! SPEC-like models draw "hot" accesses from a Zipf distribution over the
//! benchmark footprint. `rand_distr` is outside the dependency budget, so we
//! implement the standard rejection-inversion sampler of Hörmann &
//! Derflinger ("Rejection-inversion to generate variates from monotone
//! discrete distributions", ACM TOMACS 1996) — the same algorithm used by
//! `rand_distr::Zipf`. Sampling is O(1) per draw with no table.

use rand::Rng;

/// Zipf sampler over ranks `0..n` with exponent `s > 0`:
/// P(rank = k) ∝ 1 / (k + 1)^s.
#[derive(Debug, Clone)]
pub struct Zipf {
    n: u64,
    s: f64,
    /// H(x) = ∫ (1+t)^-s dt helper values precomputed at construction.
    h_x1: f64,
    h_n: f64,
    /// Acceptance threshold constant.
    t: f64,
}

impl Zipf {
    /// Create a sampler over `n` ranks with exponent `s`.
    ///
    /// Panics if `n == 0` or `s` is not finite and positive.
    pub fn new(n: u64, s: f64) -> Self {
        assert!(n > 0, "zipf over empty support");
        assert!(s.is_finite() && s > 0.0, "zipf exponent must be positive, got {s}");
        let h_x1 = h(1.5, s) - 1.0;
        let h_n = h(n as f64 + 0.5, s);
        let t = 2.0 - h_inv(h(2.5, s) - (2f64).powf(-s), s);
        Self { n, s, h_x1, h_n, t }
    }

    /// Number of ranks in the support.
    pub fn support(&self) -> u64 {
        self.n
    }

    /// Exponent.
    pub fn exponent(&self) -> f64 {
        self.s
    }

    /// Draw `out.len()` ranks in one call — the batched counterpart of
    /// [`sample`](Self::sample) for block-filling request generators. The
    /// draws (and RNG consumption) are identical to calling `sample` once
    /// per slot.
    pub fn sample_many<R: Rng + ?Sized>(&self, rng: &mut R, out: &mut [u64]) {
        for slot in out.iter_mut() {
            *slot = self.sample(rng);
        }
    }

    /// Draw a rank in `0..n` (rank 0 is the most popular).
    #[inline]
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        loop {
            let u = self.h_n + rng.random::<f64>() * (self.h_x1 - self.h_n);
            let x = h_inv(u, self.s);
            let k = x.round().clamp(1.0, self.n as f64);
            // Accept early in the dominant region, otherwise test exactly.
            if (k - x).abs() <= self.t || u >= h(k + 0.5, self.s) - k.powf(-self.s) {
                return k as u64 - 1;
            }
        }
    }
}

/// H(x) = (x^(1-s) - 1) / (1 - s), the antiderivative of x^-s shifted so
/// H(1) = 0; degenerates to ln(x) as s -> 1.
fn h(x: f64, s: f64) -> f64 {
    let q = 1.0 - s;
    if q.abs() < 1e-9 {
        x.ln()
    } else {
        (x.powf(q) - 1.0) / q
    }
}

/// Inverse of [`h`].
fn h_inv(y: f64, s: f64) -> f64 {
    let q = 1.0 - s;
    if q.abs() < 1e-9 {
        y.exp()
    } else {
        (1.0 + q * y).powf(1.0 / q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn frequencies(n: u64, s: f64, draws: usize) -> Vec<f64> {
        let z = Zipf::new(n, s);
        let mut rng = SmallRng::seed_from_u64(1234);
        let mut counts = vec![0u64; n as usize];
        for _ in 0..draws {
            counts[z.sample(&mut rng) as usize] += 1;
        }
        counts.iter().map(|&c| c as f64 / draws as f64).collect()
    }

    fn theoretical(n: u64, s: f64) -> Vec<f64> {
        let weights: Vec<f64> = (1..=n).map(|k| (k as f64).powf(-s)).collect();
        let z: f64 = weights.iter().sum();
        weights.into_iter().map(|w| w / z).collect()
    }

    #[test]
    fn matches_theoretical_pmf_small_support() {
        for &s in &[0.5, 0.99, 1.0, 1.2, 2.0] {
            let emp = frequencies(10, s, 400_000);
            let theo = theoretical(10, s);
            for (k, (e, t)) in emp.iter().zip(&theo).enumerate() {
                assert!(
                    (e - t).abs() < 0.01,
                    "s={s} rank={k}: empirical {e:.4} vs theoretical {t:.4}"
                );
            }
        }
    }

    #[test]
    fn samples_stay_in_support() {
        let z = Zipf::new(7, 1.1);
        let mut rng = SmallRng::seed_from_u64(5);
        for _ in 0..10_000 {
            assert!(z.sample(&mut rng) < 7);
        }
    }

    #[test]
    fn rank_zero_is_most_popular() {
        let emp = frequencies(100, 1.0, 200_000);
        assert!(emp[0] > emp[1]);
        assert!(emp[1] > emp[10]);
        assert!(emp[10] > emp[99]);
    }

    #[test]
    fn higher_exponent_concentrates_mass() {
        let flat = frequencies(50, 0.5, 200_000);
        let steep = frequencies(50, 2.0, 200_000);
        assert!(steep[0] > flat[0] * 2.0);
    }

    #[test]
    fn singleton_support_always_zero() {
        let z = Zipf::new(1, 1.3);
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..100 {
            assert_eq!(z.sample(&mut rng), 0);
        }
    }

    #[test]
    #[should_panic(expected = "empty support")]
    fn zero_support_panics() {
        let _ = Zipf::new(0, 1.0);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn non_positive_exponent_panics() {
        let _ = Zipf::new(10, 0.0);
    }
}
