//! # sawl-trace — memory request streams
//!
//! The SAWL paper evaluates wear leveling under three kinds of traffic:
//!
//! 1. **Attack programs** — Repeated Address Attack (RAA) writes one logical
//!    address forever; Birthday Paradox Attack (BPA) randomly selects logical
//!    addresses and hammers each precisely ([`attack`]).
//! 2. **SPEC CPU2006 applications** — 14 memory-intensive benchmarks played
//!    through gem5. SPEC traces are proprietary, so this crate provides
//!    *synthetic SPEC-like models* ([`spec`]): parameterized address-stream
//!    generators (footprint, Zipf skew, scan fraction, write ratio, phase
//!    schedule) whose parameters are chosen per benchmark to reproduce the
//!    qualitative access classes the paper reports. See DESIGN.md §5.
//! 3. **Microbenchmark patterns** — uniform, stride, sequential, hotspot
//!    ([`patterns`]) used by unit tests and ablations.
//!
//! Every generator implements [`AddressStream`]; streams compose via
//! [`phased::Phased`] and [`phased::Mix`]. Streams can be recorded to and
//! replayed from a compact binary format ([`file`]).
//!
//! All randomness is deterministic per seed: the same (generator, seed)
//! pair always produces the same request sequence.

pub mod attack;
pub mod crash;
pub mod file;
pub mod patterns;
pub mod phased;
pub mod rate_mode;
pub mod reuse;
pub mod spec;
pub mod stats;
pub mod zipf;

pub use attack::{Bpa, Raa};
pub use crash::{
    demand_writes_before, power_loss_at_sample_boundaries, power_loss_schedule, sample_boundaries,
};
pub use file::{TraceReader, TraceWriter};
pub use patterns::{Hotspot, SeqScan, Stride, Uniform};
pub use phased::{Mix, Phased};
pub use rate_mode::RateMode;
pub use reuse::ReuseTracker;
pub use spec::{SpecBenchmark, SpecModel, ALL_BENCHMARKS};
pub use stats::StreamStats;
pub use zipf::Zipf;

/// One memory request at line granularity, after the on-chip caches: this
/// is the traffic the memory controller (and hence wear leveling) sees.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemReq {
    /// Logical line address.
    pub la: u64,
    /// `true` for a write (wears the cell), `false` for a read.
    pub write: bool,
}

impl MemReq {
    /// Construct a read request.
    pub fn read(la: u64) -> Self {
        Self { la, write: false }
    }

    /// Construct a write request.
    pub fn write(la: u64) -> Self {
        Self { la, write: true }
    }
}

/// An infinite stream of memory requests over a logical address space of
/// `space_lines()` lines. Implementations must be deterministic functions of
/// their construction parameters (including seeds).
pub trait AddressStream {
    /// Produce the next request. Streams are infinite; generators cycle or
    /// re-draw as needed.
    fn next_req(&mut self) -> MemReq;

    /// Fill `buf` with the next `buf.len()` requests and return how many
    /// were produced (always `buf.len()` — streams are infinite). The
    /// sequence is bit-identical to calling [`next_req`](Self::next_req)
    /// `buf.len()` times; batching exists so drivers pay one virtual
    /// dispatch per block instead of one per request. Hot generators
    /// override this to hoist per-request invariant loads out of the loop.
    fn fill(&mut self, buf: &mut [MemReq]) -> usize {
        for slot in buf.iter_mut() {
            *slot = self.next_req();
        }
        buf.len()
    }

    /// Size of the logical address space this stream draws from; every
    /// produced `la` is `< space_lines()`.
    fn space_lines(&self) -> u64;

    /// Human-readable name for reports.
    fn name(&self) -> &str {
        "stream"
    }
}

impl<S: AddressStream + ?Sized> AddressStream for Box<S> {
    fn next_req(&mut self) -> MemReq {
        (**self).next_req()
    }

    fn fill(&mut self, buf: &mut [MemReq]) -> usize {
        (**self).fill(buf)
    }

    fn space_lines(&self) -> u64 {
        (**self).space_lines()
    }

    fn name(&self) -> &str {
        (**self).name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memreq_constructors() {
        assert!(!MemReq::read(7).write);
        assert!(MemReq::write(7).write);
        assert_eq!(MemReq::read(7).la, 7);
    }

    #[test]
    fn boxed_stream_delegates() {
        let mut s: Box<dyn AddressStream> = Box::new(Raa::new(5, 64));
        assert_eq!(s.next_req(), MemReq::write(5));
        assert_eq!(s.space_lines(), 64);
        assert_eq!(s.name(), "raa");
    }
}
