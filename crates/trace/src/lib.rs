//! # sawl-trace — memory request streams
//!
//! The SAWL paper evaluates wear leveling under three kinds of traffic:
//!
//! 1. **Attack programs** — Repeated Address Attack (RAA) writes one logical
//!    address forever; Birthday Paradox Attack (BPA) randomly selects logical
//!    addresses and hammers each precisely ([`attack`]).
//! 2. **SPEC CPU2006 applications** — 14 memory-intensive benchmarks played
//!    through gem5. SPEC traces are proprietary, so this crate provides
//!    *synthetic SPEC-like models* ([`spec`]): parameterized address-stream
//!    generators (footprint, Zipf skew, scan fraction, write ratio, phase
//!    schedule) whose parameters are chosen per benchmark to reproduce the
//!    qualitative access classes the paper reports. See DESIGN.md §5.
//! 3. **Microbenchmark patterns** — uniform, stride, sequential, hotspot
//!    ([`patterns`]) used by unit tests and ablations.
//!
//! Every generator implements [`AddressStream`]; streams compose via
//! [`phased::Phased`] and [`phased::Mix`]. Streams can be recorded to and
//! replayed from a compact binary format ([`file`]).
//!
//! All randomness is deterministic per seed: the same (generator, seed)
//! pair always produces the same request sequence.

pub mod attack;
pub mod crash;
pub mod feedback;
pub mod file;
pub mod interleave;
pub mod patterns;
pub mod phased;
pub mod rate_mode;
pub mod reuse;
pub mod spec;
pub mod stats;
pub mod ycsb;
pub mod zipf;

pub use attack::{Bpa, Raa};
pub use crash::{
    demand_writes_before, power_loss_at_sample_boundaries, power_loss_schedule, sample_boundaries,
};
pub use feedback::GcFeedback;
pub use file::{TraceFileStream, TraceReader, TraceWriter};
pub use interleave::Interleave;
pub use patterns::{Hotspot, SeqScan, Stride, Uniform, ZipfStream};
pub use phased::{Mix, Phased};
pub use rate_mode::RateMode;
pub use reuse::ReuseTracker;
pub use spec::{SpecBenchmark, SpecModel, ALL_BENCHMARKS};
pub use stats::StreamStats;
pub use ycsb::Ycsb;
pub use zipf::Zipf;

/// One memory request at line granularity, after the on-chip caches: this
/// is the traffic the memory controller (and hence wear leveling) sees.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemReq {
    /// Logical line address.
    pub la: u64,
    /// `true` for a write (wears the cell), `false` for a read.
    pub write: bool,
}

impl MemReq {
    /// Construct a read request.
    pub fn read(la: u64) -> Self {
        Self { la, write: false }
    }

    /// Construct a write request.
    pub fn write(la: u64) -> Self {
        Self { la, write: true }
    }
}

/// A run of `len` consecutive identical requests (same logical address,
/// same kind). The run-level stream interface ([`AddressStream::fill_runs`])
/// speaks in these so that run-structured generators (BPA dwells, RAA) can
/// hand whole runs to the batched write path without ever materializing —
/// or re-scanning — the per-request sequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReqRun {
    /// Logical line address every request in the run targets.
    pub la: u64,
    /// `true` for writes, `false` for reads.
    pub write: bool,
    /// Number of consecutive requests in the run (≥ 1).
    pub len: u64,
}

/// A point-in-time summary of device wear, fed to observation-driven
/// streams ([`AddressStream::observe_wear`]) at batch boundaries. Drivers
/// build one from the device's wear counters and its O(1) incremental
/// wear probe immediately before each batch pull, so a feedback workload
/// (e.g. a GC model whose trigger follows write amplification and wear
/// variance) sees the same numbers on the scalar and batched paths.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WearObservation {
    /// Demand writes the device has absorbed so far.
    pub demand_writes: u64,
    /// Overhead (wear-leveling / fault) writes so far.
    pub overhead_writes: u64,
    /// Mean per-line write count.
    pub wear_mean: f64,
    /// Coefficient of variation of per-line write counts.
    pub wear_cov: f64,
    /// Maximum per-line write count.
    pub wear_max: u32,
}

impl WearObservation {
    /// Write amplification factor: total writes / demand writes (1.0
    /// before any demand write lands).
    pub fn waf(&self) -> f64 {
        if self.demand_writes == 0 {
            1.0
        } else {
            (self.demand_writes + self.overhead_writes) as f64 / self.demand_writes as f64
        }
    }
}

/// How a stream's position is captured in a checkpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CursorKind {
    /// The stream has no serialized cursor: resume rebuilds it from its
    /// spec and fast-forwards with [`AddressStream::skip_batches`].
    Replay,
    /// The stream serializes its full position through
    /// [`AddressStream::cursor_save`] / [`AddressStream::cursor_restore`],
    /// so resume is O(cursor) instead of O(history) — and is the only
    /// sound option for observation-driven streams, whose replay would
    /// diverge without the original wear feedback.
    State,
}

/// An infinite stream of memory requests over a logical address space of
/// `space_lines()` lines. Implementations must be deterministic functions of
/// their construction parameters (including seeds).
pub trait AddressStream {
    /// Produce the next request. Streams are infinite; generators cycle or
    /// re-draw as needed.
    fn next_req(&mut self) -> MemReq;

    /// Fill `buf` with the next `buf.len()` requests and return how many
    /// were produced (always `buf.len()` — streams are infinite). The
    /// sequence is bit-identical to calling [`next_req`](Self::next_req)
    /// `buf.len()` times; batching exists so drivers pay one virtual
    /// dispatch per block instead of one per request. Hot generators
    /// override this to hoist per-request invariant loads out of the loop.
    fn fill(&mut self, buf: &mut [MemReq]) -> usize {
        for slot in buf.iter_mut() {
            *slot = self.next_req();
        }
        buf.len()
    }

    /// Drain the next `scratch.len()` requests as runs of identical
    /// consecutive requests, replacing the contents of `runs`. Returns the
    /// total number of requests covered (always `scratch.len()`).
    ///
    /// Flattening the produced runs yields exactly the request sequence
    /// [`fill`](Self::fill) would have written, except that run boundaries
    /// are unspecified: a maximal run may be split across several `ReqRun`
    /// entries (never merged out of order). Batched drivers must therefore
    /// treat consecutive entries independently — which the device/scheme
    /// `write_run` split-equivalence already guarantees.
    ///
    /// The default derives runs by scanning a [`fill`] block through
    /// `scratch`; run-structured generators (BPA, RAA) override it to emit
    /// runs directly, skipping both the request materialization and the
    /// scan.
    fn fill_runs(&mut self, runs: &mut Vec<ReqRun>, scratch: &mut [MemReq]) -> u64 {
        runs.clear();
        let filled = self.fill(scratch);
        let mut i = 0;
        while i < filled {
            let req = scratch[i];
            let mut j = i + 1;
            while j < filled && scratch[j] == req {
                j += 1;
            }
            runs.push(ReqRun { la: req.la, write: req.write, len: (j - i) as u64 });
            i = j;
        }
        filled as u64
    }

    /// Fast-forward the stream by replaying `batches` complete
    /// [`fill_runs`](Self::fill_runs) calls of `scratch.len()` requests
    /// each, discarding the output. This is the resume cursor: a stream's
    /// internal state after N batches is a deterministic function of
    /// (generator parameters, seed, batch size, N), so a checkpoint needs
    /// to record only the batch count — rebuilding the stream from its
    /// spec and replaying the same call pattern lands it exactly where
    /// the original run left off.
    fn skip_batches(&mut self, batches: u64, scratch: &mut [MemReq]) {
        let mut runs = Vec::new();
        for _ in 0..batches {
            self.fill_runs(&mut runs, scratch);
        }
    }

    /// Size of the logical address space this stream draws from; every
    /// produced `la` is `< space_lines()`.
    fn space_lines(&self) -> u64;

    /// Human-readable name for reports.
    fn name(&self) -> &str {
        "stream"
    }

    /// Whether this stream consumes wear observations. Drivers only pay
    /// for building a [`WearObservation`] (and for the device's wear
    /// probe) when this returns `true`.
    fn wants_observation(&self) -> bool {
        false
    }

    /// Feed the stream a wear summary. Drivers call this immediately
    /// before every [`fill`](Self::fill)/[`fill_runs`](Self::fill_runs)
    /// pull — i.e. at every batch boundary — so feedback decisions land
    /// at deterministic, batch-size-pinned points in the request stream.
    fn observe_wear(&mut self, _obs: &WearObservation) {}

    /// How this stream's position checkpoints. Streams with a
    /// [`CursorKind::State`] cursor must implement
    /// [`cursor_save`](Self::cursor_save) /
    /// [`cursor_restore`](Self::cursor_restore) as exact inverses.
    fn cursor_kind(&self) -> CursorKind {
        CursorKind::Replay
    }

    /// Serialize the stream's position. Only meaningful for
    /// [`CursorKind::State`] streams; the default writes nothing.
    fn cursor_save(&self, _w: &mut sawl_ckpt::Writer) {}

    /// Restore the position written by [`cursor_save`](Self::cursor_save)
    /// into a freshly built stream. Only meaningful for
    /// [`CursorKind::State`] streams; the default reads nothing.
    fn cursor_restore(&mut self, _r: &mut sawl_ckpt::Reader) -> Result<(), sawl_ckpt::CkptError> {
        Ok(())
    }
}

impl<S: AddressStream + ?Sized> AddressStream for Box<S> {
    fn next_req(&mut self) -> MemReq {
        (**self).next_req()
    }

    fn fill(&mut self, buf: &mut [MemReq]) -> usize {
        (**self).fill(buf)
    }

    fn fill_runs(&mut self, runs: &mut Vec<ReqRun>, scratch: &mut [MemReq]) -> u64 {
        (**self).fill_runs(runs, scratch)
    }

    fn space_lines(&self) -> u64 {
        (**self).space_lines()
    }

    fn name(&self) -> &str {
        (**self).name()
    }

    fn wants_observation(&self) -> bool {
        (**self).wants_observation()
    }

    fn observe_wear(&mut self, obs: &WearObservation) {
        (**self).observe_wear(obs)
    }

    fn cursor_kind(&self) -> CursorKind {
        (**self).cursor_kind()
    }

    fn cursor_save(&self, w: &mut sawl_ckpt::Writer) {
        (**self).cursor_save(w)
    }

    fn cursor_restore(&mut self, r: &mut sawl_ckpt::Reader) -> Result<(), sawl_ckpt::CkptError> {
        (**self).cursor_restore(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Flatten `fill_runs` output back into requests and check it matches
    /// the `next_req` sequence of an identical twin stream.
    fn assert_runs_match_scalar<S: AddressStream>(
        mut runs_side: S,
        mut scalar_side: S,
        total: u64,
    ) {
        let mut runs = Vec::new();
        let mut scratch = [MemReq::read(0); 512];
        let mut produced = 0u64;
        while produced < total {
            let covered = runs_side.fill_runs(&mut runs, &mut scratch);
            assert!(covered > 0);
            for run in &runs {
                assert!(run.len >= 1);
                for _ in 0..run.len {
                    let expect = scalar_side.next_req();
                    assert_eq!((run.la, run.write), (expect.la, expect.write));
                }
            }
            assert_eq!(runs.iter().map(|r| r.len).sum::<u64>(), covered);
            produced += covered;
        }
    }

    #[test]
    fn default_fill_runs_matches_next_req() {
        assert_runs_match_scalar(
            Uniform::new(1 << 10, 0.5, 17),
            Uniform::new(1 << 10, 0.5, 17),
            5_000,
        );
    }

    #[test]
    fn bpa_fill_runs_matches_next_req() {
        // Dwell 96 does not divide the 512-request scratch budget, so runs
        // split at block boundaries — the flattened sequence must still be
        // bit-identical.
        assert_runs_match_scalar(Bpa::new(1 << 16, 96, 7), Bpa::new(1 << 16, 96, 7), 10_000);
    }

    #[test]
    fn raa_fill_runs_matches_next_req() {
        assert_runs_match_scalar(Raa::new(5, 64), Raa::new(5, 64), 2_048);
    }

    #[test]
    fn zipf_fill_runs_matches_next_req() {
        // The direct-coalescing override draws (address, kind) in the same
        // order as the scalar path; flattening its runs must reproduce the
        // scalar sequence bit for bit, mixed reads and writes included.
        assert_runs_match_scalar(
            ZipfStream::new(256, 1.2, 0.7, 11),
            ZipfStream::new(256, 1.2, 0.7, 11),
            20_000,
        );
    }

    #[test]
    fn zipf_fill_runs_coalesces_hot_ranks() {
        // A skewed write-only stream over a small space must actually
        // produce multi-request runs (the override exists to batch them);
        // the exact count is pinned by the seed.
        let mut s = ZipfStream::new(64, 1.3, 1.0, 7);
        let mut runs = Vec::new();
        let mut scratch = [MemReq::read(0); 4096];
        let covered = s.fill_runs(&mut runs, &mut scratch);
        assert_eq!(covered, 4096);
        assert_eq!(runs.iter().map(|r| r.len).sum::<u64>(), 4096);
        assert!(runs.len() < 4096, "no coalescing happened across {} requests", covered);
        assert!(runs.iter().any(|r| r.len > 1));
    }

    #[test]
    fn ycsb_fill_runs_matches_next_req() {
        // Rotation every 700 requests lands mid-block against the
        // 512-request scratch budget; the flattened sequence must still be
        // bit-identical.
        assert_runs_match_scalar(
            Ycsb::new(1 << 12, 128, 1.2, 0.8, 700, 32, 13),
            Ycsb::new(1 << 12, 128, 1.2, 0.8, 700, 32, 13),
            20_000,
        );
    }

    #[test]
    fn interleave_fill_runs_matches_next_req() {
        let mk = || {
            Interleave::new(
                vec![
                    Box::new(Bpa::new(1 << 12, 96, 7)) as Box<dyn AddressStream + Send>,
                    Box::new(ZipfStream::new(1 << 12, 1.1, 0.6, 3)),
                    Box::new(Raa::new(42, 1 << 12)),
                ],
                330,
            )
        };
        assert_runs_match_scalar(mk(), mk(), 20_000);
    }

    #[test]
    fn gc_feedback_fill_runs_matches_next_req_with_observations() {
        // The trigger only moves at observation points, so equivalence
        // holds when both sides see the same observations at the same
        // request offsets — which is exactly the driver protocol (one
        // observation immediately before each batch pull).
        let mk = || GcFeedback::new(1 << 10, 1.1, 0.9, 0.05, 0.2, 0.3, 48, 11);
        let mut runs_side = mk();
        let mut scalar_side = mk();
        let mut runs = Vec::new();
        let mut scratch = [MemReq::read(0); 512];
        let mut demand = 0u64;
        for round in 0..40u64 {
            let obs = WearObservation {
                demand_writes: demand,
                overhead_writes: demand / 3,
                wear_mean: demand as f64 / 1024.0,
                wear_cov: 0.1 + (round as f64) * 0.01,
                wear_max: 1 + round as u32,
            };
            runs_side.observe_wear(&obs);
            scalar_side.observe_wear(&obs);
            let covered = runs_side.fill_runs(&mut runs, &mut scratch);
            assert_eq!(covered, 512);
            for run in &runs {
                for _ in 0..run.len {
                    let expect = scalar_side.next_req();
                    assert_eq!((run.la, run.write), (expect.la, expect.write));
                    demand += u64::from(expect.write);
                }
            }
        }
        assert!(runs_side.gc_triggers() > 0, "the trigger never fired");
    }

    #[test]
    fn skip_batches_lands_on_the_replayed_cursor() {
        // A fresh stream fast-forwarded by N batches continues exactly
        // like one that actually served those batches.
        let mut skipped = Bpa::new(1 << 12, 96, 7);
        let mut served = Bpa::new(1 << 12, 96, 7);
        let mut scratch = [MemReq::read(0); 512];
        let mut runs = Vec::new();
        for _ in 0..5 {
            served.fill_runs(&mut runs, &mut scratch);
        }
        skipped.skip_batches(5, &mut scratch);
        for i in 0..1_000 {
            assert_eq!(skipped.next_req(), served.next_req(), "diverged at request {i}");
        }
    }

    #[test]
    fn memreq_constructors() {
        assert!(!MemReq::read(7).write);
        assert!(MemReq::write(7).write);
        assert_eq!(MemReq::read(7).la, 7);
    }

    #[test]
    fn boxed_stream_delegates() {
        let mut s: Box<dyn AddressStream> = Box::new(Raa::new(5, 64));
        assert_eq!(s.next_req(), MemReq::write(5));
        assert_eq!(s.space_lines(), 64);
        assert_eq!(s.name(), "raa");
        assert_eq!(s.cursor_kind(), CursorKind::State);
        assert!(!s.wants_observation());
    }

    /// Save a stream's cursor mid-run, restore it into a fresh twin, and
    /// check the two continue identically.
    fn assert_cursor_round_trips<S: AddressStream>(mut reference: S, mut fresh: S) {
        assert_eq!(reference.cursor_kind(), CursorKind::State);
        let mut scratch = [MemReq::read(0); 512];
        let mut runs = Vec::new();
        for _ in 0..3 {
            reference.fill_runs(&mut runs, &mut scratch);
        }
        reference.next_req();
        let mut w = sawl_ckpt::Writer::new();
        reference.cursor_save(&mut w);
        let payload = w.into_payload();
        let mut r = sawl_ckpt::Reader::new(&payload);
        fresh.cursor_restore(&mut r).unwrap();
        r.finish().unwrap();
        for i in 0..2_000 {
            assert_eq!(fresh.next_req(), reference.next_req(), "diverged at request {i}");
        }
    }

    #[test]
    fn every_builtin_generator_has_a_state_cursor() {
        assert_cursor_round_trips(Uniform::new(1 << 10, 0.5, 17), Uniform::new(1 << 10, 0.5, 17));
        assert_cursor_round_trips(
            ZipfStream::new(256, 1.2, 0.7, 11),
            ZipfStream::new(256, 1.2, 0.7, 11),
        );
        assert_cursor_round_trips(
            SeqScan::new(1 << 10, 16, 100, 0.5, 3),
            SeqScan::new(1 << 10, 16, 100, 0.5, 3),
        );
        assert_cursor_round_trips(
            Stride::new(1 << 10, 0, 128, 5, 0.5, 3),
            Stride::new(1 << 10, 0, 128, 5, 0.5, 3),
        );
        assert_cursor_round_trips(
            Hotspot::new(1 << 10, 0, 64, 0.9, 0.5, 3),
            Hotspot::new(1 << 10, 0, 64, 0.9, 0.5, 3),
        );
        assert_cursor_round_trips(Raa::new(5, 64), Raa::new(5, 64));
        assert_cursor_round_trips(Bpa::new(1 << 12, 96, 7), Bpa::new(1 << 12, 96, 7));
        assert_cursor_round_trips(
            SpecBenchmark::Soplex.stream(1 << 12, 9),
            SpecBenchmark::Soplex.stream(1 << 12, 9),
        );
        let mix = || {
            Mix::new(
                vec![
                    (1.0, Box::new(Uniform::new(1 << 10, 0.5, 1)) as Box<dyn AddressStream + Send>),
                    (2.0, Box::new(ZipfStream::new(1 << 10, 1.1, 0.8, 2))),
                ],
                5,
            )
        };
        assert_cursor_round_trips(mix(), mix());
        let phased = || {
            Phased::new(vec![
                (700, Box::new(Uniform::new(1 << 10, 0.5, 1)) as Box<dyn AddressStream + Send>),
                (300, Box::new(Bpa::new(1 << 10, 17, 2))),
            ])
        };
        assert_cursor_round_trips(phased(), phased());
    }
}
