//! Crash-point scheduling relative to request indices.
//!
//! Fault plans schedule power losses by *device write index* (the event
//! fires on the first write attempt once the device has applied that many
//! writes), but experiments are naturally described by *request index*:
//! "crash during the 40_000th request of this trace". The two disagree
//! because streams interleave reads (which never advance the write clock)
//! with writes, and because the exchange/journal traffic a wear leveler
//! adds on top of the demand stream also advances it.
//!
//! This module bridges the request-indexed view to the write-indexed one
//! by replaying a stream and counting its demand writes. The resulting
//! schedule is exact for the demand traffic; wear-leveling overhead
//! writes can only move the actual power failure *earlier* (at or before
//! the requested request index), never later, which is the conservative
//! direction for a crash test.

use crate::AddressStream;

/// Number of demand writes a stream produces strictly before request
/// `request_index` (0-based). Scheduling a power loss at this value makes
/// the device lose power on the first write at or after that request.
///
/// Consumes `request_index` requests from the stream; pass a freshly
/// seeded stream, not the one the experiment will run.
pub fn demand_writes_before(stream: &mut dyn AddressStream, request_index: u64) -> u64 {
    let mut writes = 0u64;
    for _ in 0..request_index {
        if stream.next_req().write {
            writes += 1;
        }
    }
    writes
}

/// Map request-index crash points to a `power_loss_at_writes` schedule:
/// replays the stream once, records the demand-write count in front of
/// each requested index, and returns the counts strictly increasing (as
/// [`FaultPlan::validate`] requires). Crash points with no intervening
/// write collapse into a single event, and the input order of
/// `request_indices` does not matter.
///
/// [`FaultPlan::validate`]: https://docs.rs/sawl-nvm
pub fn power_loss_schedule(stream: &mut dyn AddressStream, request_indices: &[u64]) -> Vec<u64> {
    let mut sorted = request_indices.to_vec();
    sorted.sort_unstable();
    sorted.dedup();

    let mut schedule = Vec::with_capacity(sorted.len());
    let mut replayed = 0u64;
    let mut writes = 0u64;
    for idx in sorted {
        while replayed < idx {
            if stream.next_req().write {
                writes += 1;
            }
            replayed += 1;
        }
        if schedule.last() != Some(&writes) {
            schedule.push(writes);
        }
    }
    schedule
}

/// Request indices of the first `n` telemetry sample boundaries at
/// `stride`. The telemetry recorder samples after the request with
/// 1-based index `k * stride`, so the request *after* boundary `k` has
/// 0-based index `k * stride` — crashing there means "the sample at
/// boundary `k` was taken; the power failed before the next one".
///
/// Panics when `stride` is zero (there are no boundaries to enumerate).
pub fn sample_boundaries(stride: u64, n: u64) -> Vec<u64> {
    assert!(stride > 0, "telemetry stride must be >= 1");
    (1..=n).map(|k| k * stride).collect()
}

/// Map the first `n` telemetry sample boundaries at `stride` onto a
/// write-indexed `power_loss_at_writes` schedule for `stream`: the
/// device loses power on the first demand write after each boundary
/// sample, so a crash test can align failures with the recorder's clock.
/// Writeless boundary gaps collapse exactly like
/// [`power_loss_schedule`]'s.
pub fn power_loss_at_sample_boundaries(
    stream: &mut dyn AddressStream,
    stride: u64,
    n: u64,
) -> Vec<u64> {
    power_loss_schedule(stream, &sample_boundaries(stride, n))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MemReq, Raa, Uniform};

    /// A fixed request pattern, cycled forever.
    struct Scripted {
        reqs: Vec<MemReq>,
        at: usize,
    }

    impl AddressStream for Scripted {
        fn next_req(&mut self) -> MemReq {
            let r = self.reqs[self.at % self.reqs.len()];
            self.at += 1;
            r
        }

        fn space_lines(&self) -> u64 {
            64
        }
    }

    #[test]
    fn write_only_streams_count_one_write_per_request() {
        let mut s = Raa::new(3, 64);
        assert_eq!(demand_writes_before(&mut s, 0), 0);
        let mut s = Raa::new(3, 64);
        assert_eq!(demand_writes_before(&mut s, 1_000), 1_000);
    }

    #[test]
    fn reads_do_not_advance_the_write_clock() {
        // write, read, read, write — repeated.
        let pattern = vec![MemReq::write(1), MemReq::read(2), MemReq::read(3), MemReq::write(4)];
        let mut s = Scripted { reqs: pattern, at: 0 };
        assert_eq!(demand_writes_before(&mut s, 3), 1);
        let mut s2 = Scripted { reqs: s.reqs.clone(), at: 0 };
        assert_eq!(demand_writes_before(&mut s2, 8), 4);
    }

    #[test]
    fn schedule_matches_per_index_counts() {
        let count_at = |idx: u64| {
            let mut s = Uniform::new(1 << 10, 0.5, 9);
            demand_writes_before(&mut s, idx)
        };
        let mut s = Uniform::new(1 << 10, 0.5, 9);
        let schedule = power_loss_schedule(&mut s, &[50, 10, 200]);
        assert_eq!(schedule, vec![count_at(10), count_at(50), count_at(200)]);
        assert!(schedule.windows(2).all(|w| w[0] < w[1]), "{schedule:?}");
    }

    #[test]
    fn sample_boundaries_are_stride_multiples() {
        assert_eq!(sample_boundaries(500, 3), vec![500, 1_000, 1_500]);
        assert_eq!(sample_boundaries(1, 2), vec![1, 2]);
        assert!(sample_boundaries(7, 0).is_empty());
    }

    #[test]
    #[should_panic(expected = "stride must be >= 1")]
    fn zero_stride_has_no_boundaries() {
        sample_boundaries(0, 1);
    }

    #[test]
    fn boundary_schedule_counts_writes_in_front_of_each_sample() {
        // Write-only stream: request clock == write clock, so boundary k
        // maps to exactly k*stride writes.
        let mut s = Raa::new(3, 64);
        assert_eq!(power_loss_at_sample_boundaries(&mut s, 100, 3), vec![100, 200, 300]);

        // Mixed stream: each boundary maps to the demand-write count in
        // front of that request index.
        let per_index = |idx: u64| {
            let mut s = Uniform::new(1 << 10, 0.5, 21);
            demand_writes_before(&mut s, idx)
        };
        let mut s = Uniform::new(1 << 10, 0.5, 21);
        let schedule = power_loss_at_sample_boundaries(&mut s, 64, 4);
        assert_eq!(schedule, vec![per_index(64), per_index(128), per_index(192), per_index(256)]);
    }

    #[test]
    fn writeless_gaps_collapse_into_one_event() {
        // All reads: every crash point sees zero preceding writes, and the
        // schedule must stay strictly increasing — one event, not three.
        let mut s = Scripted { reqs: vec![MemReq::read(1)], at: 0 };
        assert_eq!(power_loss_schedule(&mut s, &[5, 9, 2]), vec![0]);
    }
}
