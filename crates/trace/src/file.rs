//! Compact binary trace format.
//!
//! Generated streams can be recorded once and replayed across experiments
//! (and across schemes, so every scheme sees bit-identical traffic). The
//! format is deliberately simple:
//!
//! ```text
//! magic   8 bytes  b"SAWLTRC1"
//! space   8 bytes  u64 LE   logical address space in lines
//! count   8 bytes  u64 LE   number of records
//! records count * 8 bytes   u64 LE: (la << 1) | write
//! ```
//!
//! Records pack the write flag into bit 0, which caps the address space at
//! 2^63 lines — far beyond any device we simulate.

use std::io::{self, Read, Write};

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::{AddressStream, MemReq};

const MAGIC: &[u8; 8] = b"SAWLTRC1";

/// Streaming trace writer over any `io::Write`.
pub struct TraceWriter<W: Write> {
    out: W,
    space: u64,
    count: u64,
    buf: BytesMut,
}

impl<W: Write> TraceWriter<W> {
    /// Begin a trace over `space` lines. The header is written immediately
    /// with a zero count; call [`finish`](Self::finish) to backpatch...
    /// actually the format stores count up front, so this writer buffers the
    /// count and requires `finish` to produce a valid file only when `W`
    /// supports it. To keep the writer usable on non-seekable sinks, the
    /// count written in the header is `u64::MAX` (meaning "until EOF") and
    /// `finish` is optional.
    pub fn new(mut out: W, space: u64) -> io::Result<Self> {
        let mut header = BytesMut::with_capacity(24);
        header.put_slice(MAGIC);
        header.put_u64_le(space);
        header.put_u64_le(u64::MAX);
        out.write_all(&header)?;
        Ok(Self { out, space, count: 0, buf: BytesMut::with_capacity(64 * 1024) })
    }

    /// Append one request.
    pub fn push(&mut self, req: MemReq) -> io::Result<()> {
        assert!(req.la < self.space, "address {} outside trace space {}", req.la, self.space);
        self.buf.put_u64_le((req.la << 1) | u64::from(req.write));
        self.count += 1;
        if self.buf.len() >= 64 * 1024 {
            self.out.write_all(&self.buf)?;
            self.buf.clear();
        }
        Ok(())
    }

    /// Record `n` requests from a stream.
    pub fn record<S: AddressStream>(&mut self, stream: &mut S, n: u64) -> io::Result<()> {
        for _ in 0..n {
            self.push(stream.next_req())?;
        }
        Ok(())
    }

    /// Flush buffered records and return the sink and the record count.
    pub fn finish(mut self) -> io::Result<(W, u64)> {
        self.out.write_all(&self.buf)?;
        self.out.flush()?;
        Ok((self.out, self.count))
    }
}

/// Trace reader that replays a recorded stream; implements
/// [`AddressStream`] by cycling when the trace is exhausted.
#[derive(Debug, Clone)]
pub struct TraceReader {
    records: Bytes,
    space: u64,
    pos: usize,
}

impl TraceReader {
    /// Parse a complete trace from any reader.
    pub fn from_reader<R: Read>(mut r: R) -> io::Result<Self> {
        let mut all = Vec::new();
        r.read_to_end(&mut all)?;
        Self::from_bytes(Bytes::from(all))
    }

    /// Parse a complete trace held in memory.
    pub fn from_bytes(mut data: Bytes) -> io::Result<Self> {
        if data.len() < 24 {
            return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "trace shorter than header"));
        }
        let mut magic = [0u8; 8];
        data.copy_to_slice(&mut magic);
        if &magic != MAGIC {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "bad trace magic"));
        }
        let space = data.get_u64_le();
        let declared = data.get_u64_le();
        if !data.len().is_multiple_of(8) {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "truncated trace record"));
        }
        let actual = (data.len() / 8) as u64;
        if declared != u64::MAX && declared != actual {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("trace declares {declared} records but contains {actual}"),
            ));
        }
        if actual == 0 {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "empty trace"));
        }
        Ok(Self { records: data, space, pos: 0 })
    }

    /// Number of records in the trace.
    pub fn len(&self) -> u64 {
        (self.records.len() / 8) as u64
    }

    /// Whether the trace holds no records (never true for parsed traces).
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Read the record at `idx` without advancing the cursor.
    pub fn get(&self, idx: u64) -> MemReq {
        let off = (idx * 8) as usize;
        let raw = u64::from_le_bytes(self.records[off..off + 8].try_into().unwrap());
        MemReq { la: raw >> 1, write: raw & 1 == 1 }
    }
}

impl AddressStream for TraceReader {
    fn next_req(&mut self) -> MemReq {
        let idx = self.pos as u64 % self.len();
        self.pos += 1;
        self.get(idx)
    }

    fn space_lines(&self) -> u64 {
        self.space
    }

    fn name(&self) -> &str {
        "trace-replay"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::patterns::Uniform;

    #[test]
    fn round_trip_preserves_requests() {
        let mut gen = Uniform::new(1 << 12, 0.4, 7);
        let mut expected = Vec::new();
        let mut w = TraceWriter::new(Vec::new(), 1 << 12).unwrap();
        for _ in 0..1000 {
            let r = gen.next_req();
            expected.push(r);
            w.push(r).unwrap();
        }
        let (bytes, count) = w.finish().unwrap();
        assert_eq!(count, 1000);
        let mut reader = TraceReader::from_bytes(Bytes::from(bytes)).unwrap();
        assert_eq!(reader.len(), 1000);
        assert_eq!(reader.space_lines(), 1 << 12);
        for r in &expected {
            assert_eq!(reader.next_req(), *r);
        }
    }

    #[test]
    fn reader_cycles_at_end() {
        let mut w = TraceWriter::new(Vec::new(), 16).unwrap();
        w.push(MemReq::write(3)).unwrap();
        w.push(MemReq::read(5)).unwrap();
        let (bytes, _) = w.finish().unwrap();
        let mut r = TraceReader::from_bytes(Bytes::from(bytes)).unwrap();
        assert_eq!(r.next_req(), MemReq::write(3));
        assert_eq!(r.next_req(), MemReq::read(5));
        assert_eq!(r.next_req(), MemReq::write(3));
    }

    #[test]
    fn record_helper_pulls_from_stream() {
        let mut gen = Uniform::new(64, 1.0, 1);
        let mut w = TraceWriter::new(Vec::new(), 64).unwrap();
        w.record(&mut gen, 50).unwrap();
        let (bytes, count) = w.finish().unwrap();
        assert_eq!(count, 50);
        let r = TraceReader::from_bytes(Bytes::from(bytes)).unwrap();
        assert_eq!(r.len(), 50);
    }

    #[test]
    fn rejects_bad_magic() {
        let err = TraceReader::from_bytes(Bytes::from(vec![0u8; 32])).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn rejects_short_input() {
        let err = TraceReader::from_bytes(Bytes::from(vec![0u8; 10])).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn rejects_truncated_record() {
        let mut w = TraceWriter::new(Vec::new(), 16).unwrap();
        w.push(MemReq::write(1)).unwrap();
        let (mut bytes, _) = w.finish().unwrap();
        bytes.pop();
        let err = TraceReader::from_bytes(Bytes::from(bytes)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn rejects_empty_trace() {
        let w = TraceWriter::new(Vec::new(), 16).unwrap();
        let (bytes, _) = w.finish().unwrap();
        let err = TraceReader::from_bytes(Bytes::from(bytes)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    #[should_panic(expected = "outside trace space")]
    fn writer_rejects_out_of_space_address() {
        let mut w = TraceWriter::new(Vec::new(), 16).unwrap();
        let _ = w.push(MemReq::write(16));
    }
}
