//! Compact binary trace format.
//!
//! Generated streams can be recorded once and replayed across experiments
//! (and across schemes, so every scheme sees bit-identical traffic). The
//! current format (`SAWLTRC2`) carries the source stream's name so a
//! replay reports under the same workload label as the live run:
//!
//! ```text
//! magic    8 bytes          b"SAWLTRC2"
//! space    8 bytes          u64 LE   logical address space in lines
//! count    8 bytes          u64 LE   number of records (u64::MAX = until EOF)
//! name_len 4 bytes          u32 LE   length of the stream name
//! name     name_len bytes   UTF-8 stream name
//! records  count * 8 bytes  u64 LE: (la << 1) | write
//! ```
//!
//! The original `SAWLTRC1` layout (no name field) is still read; such
//! traces replay under the name `"trace-replay"`.
//!
//! Records pack the write flag into bit 0, which caps the address space at
//! 2^63 lines — far beyond any device we simulate.
//!
//! [`TraceWriter`] streams records through any `io::Write`; on seekable
//! sinks [`TraceWriter::finish`] backpatches the real record count into
//! the header, while [`TraceWriter::finish_streaming`] leaves the
//! until-EOF marker for pipes and sockets. [`TraceReader`] replays a
//! trace held in memory; [`TraceFileStream`] replays straight off disk
//! through a buffered reader without loading the records.

use std::fs::File;
use std::io::{self, BufReader, Read, Seek, SeekFrom, Write};
use std::path::Path;

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::{AddressStream, CursorKind, MemReq, ReqRun};

const MAGIC_V1: &[u8; 8] = b"SAWLTRC1";
const MAGIC_V2: &[u8; 8] = b"SAWLTRC2";

/// Reject absurd name lengths before allocating: no stream name in this
/// workspace comes near this, so anything larger is a corrupt header.
const MAX_NAME_LEN: u32 = 4096;

/// Byte offset of the `count` header field (both versions).
const COUNT_OFFSET: u64 = 16;

/// A parsed trace header: everything before the record array.
#[derive(Debug, Clone, PartialEq, Eq)]
struct TraceHeader {
    space: u64,
    /// Declared record count; `u64::MAX` means "until EOF".
    declared: u64,
    /// Recorded stream name ("trace-replay" for v1 / unnamed traces).
    name: String,
    /// Total header length in bytes; records start here.
    len: u64,
}

/// Parse a trace header from the front of `r`, with the typed rejection
/// taxonomy shared by the in-memory and streaming readers.
fn read_header<R: Read>(r: &mut R) -> io::Result<TraceHeader> {
    let mut magic = [0u8; 8];
    fill_exact(r, &mut magic, "trace shorter than header")?;
    let v2 = match &magic {
        m if m == MAGIC_V1 => false,
        m if m == MAGIC_V2 => true,
        _ => return Err(io::Error::new(io::ErrorKind::InvalidData, "bad trace magic")),
    };
    let mut fixed = [0u8; 16];
    fill_exact(r, &mut fixed, "trace shorter than header")?;
    let space = u64::from_le_bytes(fixed[..8].try_into().unwrap());
    let declared = u64::from_le_bytes(fixed[8..].try_into().unwrap());
    if !v2 {
        return Ok(TraceHeader { space, declared, name: "trace-replay".into(), len: 24 });
    }
    let mut len4 = [0u8; 4];
    fill_exact(r, &mut len4, "trace shorter than header")?;
    let name_len = u32::from_le_bytes(len4);
    if name_len > MAX_NAME_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("trace name length {name_len} exceeds {MAX_NAME_LEN}"),
        ));
    }
    let mut name = vec![0u8; name_len as usize];
    fill_exact(r, &mut name, "trace shorter than header")?;
    let name = String::from_utf8(name)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "trace name is not UTF-8"))?;
    let name = if name.is_empty() { "trace-replay".into() } else { name };
    Ok(TraceHeader { space, declared, name, len: 28 + u64::from(name_len) })
}

/// `read_exact` with a header-specific truncation message (the default
/// `failed to fill whole buffer` loses what was being parsed).
fn fill_exact<R: Read>(r: &mut R, buf: &mut [u8], what: &str) -> io::Result<()> {
    r.read_exact(buf).map_err(|e| {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            io::Error::new(io::ErrorKind::UnexpectedEof, what.to_string())
        } else {
            e
        }
    })
}

/// Validate the record-array byte length against the header, returning
/// the record count.
fn validate_records(header: &TraceHeader, record_bytes: u64) -> io::Result<u64> {
    if !record_bytes.is_multiple_of(8) {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "truncated trace record"));
    }
    let actual = record_bytes / 8;
    if header.declared != u64::MAX && header.declared != actual {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("trace declares {} records but contains {actual}", header.declared),
        ));
    }
    if actual == 0 {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "empty trace"));
    }
    Ok(actual)
}

fn decode_record(raw: u64) -> MemReq {
    MemReq { la: raw >> 1, write: raw & 1 == 1 }
}

/// Streaming trace writer over any `io::Write`.
pub struct TraceWriter<W: Write> {
    out: W,
    space: u64,
    count: u64,
    buf: BytesMut,
}

impl<W: Write> TraceWriter<W> {
    /// Begin an unnamed trace over `space` lines (replays as
    /// `"trace-replay"`). The header is written immediately with the
    /// until-EOF count marker; [`finish`](Self::finish) backpatches the
    /// real count on seekable sinks, and
    /// [`finish_streaming`](Self::finish_streaming) leaves the marker
    /// for sinks that cannot seek.
    pub fn new(out: W, space: u64) -> io::Result<Self> {
        Self::with_name(out, space, "")
    }

    /// Begin a trace over `space` lines recording `name` as the source
    /// stream's name, so replays report under the same workload label.
    pub fn with_name(mut out: W, space: u64, name: &str) -> io::Result<Self> {
        assert!(
            name.len() <= MAX_NAME_LEN as usize,
            "stream name {} bytes exceeds {MAX_NAME_LEN}",
            name.len()
        );
        let mut header = BytesMut::with_capacity(28 + name.len());
        header.put_slice(MAGIC_V2);
        header.put_u64_le(space);
        header.put_u64_le(u64::MAX);
        header.put_u32_le(name.len() as u32);
        header.put_slice(name.as_bytes());
        out.write_all(&header)?;
        Ok(Self { out, space, count: 0, buf: BytesMut::with_capacity(64 * 1024) })
    }

    /// Append one request.
    pub fn push(&mut self, req: MemReq) -> io::Result<()> {
        assert!(req.la < self.space, "address {} outside trace space {}", req.la, self.space);
        self.buf.put_u64_le((req.la << 1) | u64::from(req.write));
        self.count += 1;
        if self.buf.len() >= 64 * 1024 {
            self.out.write_all(&self.buf)?;
            self.buf.clear();
        }
        Ok(())
    }

    /// Record `n` requests from a stream.
    pub fn record<S: AddressStream + ?Sized>(&mut self, stream: &mut S, n: u64) -> io::Result<()> {
        for _ in 0..n {
            self.push(stream.next_req())?;
        }
        Ok(())
    }

    /// Flush buffered records without backpatching: the header keeps the
    /// `u64::MAX` until-EOF count. For pipes, sockets, and other
    /// non-seekable sinks; prefer [`finish`](Self::finish) wherever the
    /// sink can seek. Returns the sink and the record count.
    pub fn finish_streaming(mut self) -> io::Result<(W, u64)> {
        self.out.write_all(&self.buf)?;
        self.out.flush()?;
        Ok((self.out, self.count))
    }
}

impl<W: Write + Seek> TraceWriter<W> {
    /// Flush buffered records and backpatch the real record count into
    /// the header, producing a self-describing trace. Returns the sink
    /// (positioned at end) and the record count.
    pub fn finish(mut self) -> io::Result<(W, u64)> {
        self.out.write_all(&self.buf)?;
        self.out.seek(SeekFrom::Start(COUNT_OFFSET))?;
        self.out.write_all(&self.count.to_le_bytes())?;
        self.out.seek(SeekFrom::End(0))?;
        self.out.flush()?;
        Ok((self.out, self.count))
    }
}

/// Trace reader that replays a recorded stream held in memory; implements
/// [`AddressStream`] by cycling when the trace is exhausted.
#[derive(Debug, Clone)]
pub struct TraceReader {
    records: Bytes,
    space: u64,
    name: String,
    pos: u64,
}

impl TraceReader {
    /// Parse a complete trace from any reader.
    pub fn from_reader<R: Read>(mut r: R) -> io::Result<Self> {
        let mut all = Vec::new();
        r.read_to_end(&mut all)?;
        Self::from_bytes(Bytes::from(all))
    }

    /// Parse a complete trace held in memory.
    pub fn from_bytes(data: Bytes) -> io::Result<Self> {
        if data.len() < 24 {
            return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "trace shorter than header"));
        }
        let mut cursor = io::Cursor::new(&data[..]);
        let header = read_header(&mut cursor)?;
        let mut records = data;
        records.advance(header.len as usize);
        validate_records(&header, records.len() as u64)?;
        Ok(Self { records, space: header.space, name: header.name, pos: 0 })
    }

    /// Number of records in the trace.
    pub fn len(&self) -> u64 {
        (self.records.len() / 8) as u64
    }

    /// Whether the trace holds no records (never true for parsed traces).
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Read the record at `idx` without advancing the cursor.
    pub fn get(&self, idx: u64) -> MemReq {
        let off = (idx * 8) as usize;
        decode_record(u64::from_le_bytes(self.records[off..off + 8].try_into().unwrap()))
    }
}

impl AddressStream for TraceReader {
    fn next_req(&mut self) -> MemReq {
        let idx = self.pos % self.len();
        self.pos = self.pos.wrapping_add(1);
        self.get(idx)
    }

    fn space_lines(&self) -> u64 {
        self.space
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn cursor_kind(&self) -> CursorKind {
        CursorKind::State
    }

    fn cursor_save(&self, w: &mut sawl_ckpt::Writer) {
        w.put_u64(self.pos);
    }

    fn cursor_restore(&mut self, r: &mut sawl_ckpt::Reader) -> Result<(), sawl_ckpt::CkptError> {
        self.pos = r.get_u64()?;
        Ok(())
    }
}

/// Streaming trace replay straight off disk: a buffered reader walks the
/// record array without ever loading it, cycling back to the first record
/// at EOF. This is what `WorkloadSpec::TraceFile` builds, so multi-GB
/// traces replay in constant memory.
#[derive(Debug)]
pub struct TraceFileStream {
    reader: BufReader<File>,
    space: u64,
    count: u64,
    records_start: u64,
    /// Index of the next record to replay, already wrapped into
    /// `0..count`.
    pos: u64,
    name: String,
}

impl TraceFileStream {
    /// Open a trace file for streaming replay, validating the header and
    /// the record-array length up front with the same typed rejections as
    /// [`TraceReader`].
    pub fn open(path: &Path) -> io::Result<Self> {
        let file = File::open(path)?;
        let file_len = file.metadata()?.len();
        if file_len < 24 {
            return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "trace shorter than header"));
        }
        let mut reader = BufReader::with_capacity(64 * 1024, file);
        let header = read_header(&mut reader)?;
        if file_len < header.len {
            return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "trace shorter than header"));
        }
        let count = validate_records(&header, file_len - header.len)?;
        Ok(Self {
            reader,
            space: header.space,
            count,
            records_start: header.len,
            pos: 0,
            name: header.name,
        })
    }

    /// Number of records in the trace.
    pub fn len(&self) -> u64 {
        self.count
    }

    /// Never true: empty traces are rejected at open.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Position the underlying reader at record `pos`.
    fn seek_to_pos(&mut self) -> io::Result<()> {
        self.reader.seek(SeekFrom::Start(self.records_start + 8 * self.pos))?;
        Ok(())
    }

    fn read_record(&mut self) -> MemReq {
        if self.pos == self.count {
            self.pos = 0;
            self.seek_to_pos().expect("trace file seek failed mid-replay");
        }
        let mut raw = [0u8; 8];
        self.reader.read_exact(&mut raw).expect("trace file read failed mid-replay");
        self.pos += 1;
        decode_record(u64::from_le_bytes(raw))
    }
}

impl AddressStream for TraceFileStream {
    fn next_req(&mut self) -> MemReq {
        self.read_record()
    }

    fn fill(&mut self, buf: &mut [MemReq]) -> usize {
        for slot in buf.iter_mut() {
            *slot = self.read_record();
        }
        buf.len()
    }

    fn fill_runs(&mut self, runs: &mut Vec<ReqRun>, scratch: &mut [MemReq]) -> u64 {
        // Coalesce while reading: repeated records (hammer phases in real
        // traces) collapse into runs without a second scan over scratch.
        runs.clear();
        let mut cur: Option<ReqRun> = None;
        for _ in 0..scratch.len() {
            let req = self.read_record();
            match cur.as_mut() {
                Some(run) if run.la == req.la && run.write == req.write => run.len += 1,
                _ => {
                    if let Some(run) = cur.take() {
                        runs.push(run);
                    }
                    cur = Some(ReqRun { la: req.la, write: req.write, len: 1 });
                }
            }
        }
        if let Some(run) = cur {
            runs.push(run);
        }
        scratch.len() as u64
    }

    fn space_lines(&self) -> u64 {
        self.space
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn cursor_kind(&self) -> CursorKind {
        CursorKind::State
    }

    fn cursor_save(&self, w: &mut sawl_ckpt::Writer) {
        w.put_u64(self.pos);
    }

    fn cursor_restore(&mut self, r: &mut sawl_ckpt::Reader) -> Result<(), sawl_ckpt::CkptError> {
        let pos = r.get_u64()?;
        if pos > self.count {
            return Err(sawl_ckpt::CkptError::Corrupt(format!(
                "trace cursor {pos} past the {}-record trace",
                self.count
            )));
        }
        self.pos = pos;
        self.seek_to_pos().map_err(sawl_ckpt::CkptError::Io)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::patterns::Uniform;
    use std::io::Cursor;

    fn mem_writer(space: u64) -> TraceWriter<Cursor<Vec<u8>>> {
        TraceWriter::new(Cursor::new(Vec::new()), space).unwrap()
    }

    #[test]
    fn round_trip_preserves_requests() {
        let mut gen = Uniform::new(1 << 12, 0.4, 7);
        let mut expected = Vec::new();
        let mut w = mem_writer(1 << 12);
        for _ in 0..1000 {
            let r = gen.next_req();
            expected.push(r);
            w.push(r).unwrap();
        }
        let (sink, count) = w.finish().unwrap();
        assert_eq!(count, 1000);
        let mut reader = TraceReader::from_bytes(Bytes::from(sink.into_inner())).unwrap();
        assert_eq!(reader.len(), 1000);
        assert_eq!(reader.space_lines(), 1 << 12);
        for r in &expected {
            assert_eq!(reader.next_req(), *r);
        }
    }

    #[test]
    fn reader_cycles_at_end() {
        let mut w = mem_writer(16);
        w.push(MemReq::write(3)).unwrap();
        w.push(MemReq::read(5)).unwrap();
        let (sink, _) = w.finish().unwrap();
        let mut r = TraceReader::from_bytes(Bytes::from(sink.into_inner())).unwrap();
        assert_eq!(r.next_req(), MemReq::write(3));
        assert_eq!(r.next_req(), MemReq::read(5));
        assert_eq!(r.next_req(), MemReq::write(3));
    }

    #[test]
    fn record_helper_pulls_from_stream() {
        let mut gen = Uniform::new(64, 1.0, 1);
        let mut w = mem_writer(64);
        w.record(&mut gen, 50).unwrap();
        let (sink, count) = w.finish().unwrap();
        assert_eq!(count, 50);
        let r = TraceReader::from_bytes(Bytes::from(sink.into_inner())).unwrap();
        assert_eq!(r.len(), 50);
    }

    #[test]
    fn finish_backpatches_the_count_on_seekable_sinks() {
        let mut w = mem_writer(16);
        w.push(MemReq::write(3)).unwrap();
        w.push(MemReq::read(5)).unwrap();
        let (sink, count) = w.finish().unwrap();
        assert_eq!(count, 2);
        let bytes = sink.into_inner();
        let declared = u64::from_le_bytes(bytes[16..24].try_into().unwrap());
        assert_eq!(declared, 2, "header count must be backpatched");
        // A backpatched trace survives a one-record amputation check: the
        // declared/actual mismatch is now detectable.
        let truncated = Bytes::from(bytes[..bytes.len() - 8].to_vec());
        assert!(TraceReader::from_bytes(truncated).is_err());
    }

    #[test]
    fn finish_streaming_keeps_the_until_eof_marker() {
        // Vec<u8> has no Seek: the streaming finish is the only option,
        // and the header keeps u64::MAX, which readers accept as
        // "count = until EOF".
        let mut w = TraceWriter::new(Vec::new(), 16).unwrap();
        w.push(MemReq::write(3)).unwrap();
        let (bytes, count) = w.finish_streaming().unwrap();
        assert_eq!(count, 1);
        let declared = u64::from_le_bytes(bytes[16..24].try_into().unwrap());
        assert_eq!(declared, u64::MAX);
        let mut r = TraceReader::from_bytes(Bytes::from(bytes)).unwrap();
        assert_eq!(r.len(), 1);
        assert_eq!(r.next_req(), MemReq::write(3));
    }

    #[test]
    fn named_traces_replay_under_the_recorded_name() {
        let mut w = TraceWriter::with_name(Cursor::new(Vec::new()), 64, "zipf").unwrap();
        w.push(MemReq::write(1)).unwrap();
        let (sink, _) = w.finish().unwrap();
        let r = TraceReader::from_bytes(Bytes::from(sink.into_inner())).unwrap();
        assert_eq!(r.name(), "zipf");
        // Unnamed traces fall back to the generic replay label.
        let mut w = mem_writer(64);
        w.push(MemReq::write(1)).unwrap();
        let (sink, _) = w.finish().unwrap();
        let r = TraceReader::from_bytes(Bytes::from(sink.into_inner())).unwrap();
        assert_eq!(r.name(), "trace-replay");
    }

    #[test]
    fn v1_traces_still_parse() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC_V1);
        bytes.extend_from_slice(&64u64.to_le_bytes());
        bytes.extend_from_slice(&u64::MAX.to_le_bytes());
        bytes.extend_from_slice(&((7u64 << 1) | 1).to_le_bytes());
        let mut r = TraceReader::from_bytes(Bytes::from(bytes)).unwrap();
        assert_eq!(r.space_lines(), 64);
        assert_eq!(r.name(), "trace-replay");
        assert_eq!(r.next_req(), MemReq::write(7));
    }

    #[test]
    fn rejects_bad_magic() {
        let err = TraceReader::from_bytes(Bytes::from(vec![0u8; 32])).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn rejects_short_input() {
        let err = TraceReader::from_bytes(Bytes::from(vec![0u8; 10])).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn rejects_truncated_record() {
        let mut w = mem_writer(16);
        w.push(MemReq::write(1)).unwrap();
        w.push(MemReq::write(2)).unwrap();
        let (sink, _) = w.finish().unwrap();
        let mut bytes = sink.into_inner();
        bytes.pop();
        let err = TraceReader::from_bytes(Bytes::from(bytes)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn rejects_empty_trace() {
        let w = mem_writer(16);
        let (sink, _) = w.finish().unwrap();
        let err = TraceReader::from_bytes(Bytes::from(sink.into_inner())).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn rejects_corrupt_name_fields() {
        // Name length larger than the cap.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC_V2);
        bytes.extend_from_slice(&64u64.to_le_bytes());
        bytes.extend_from_slice(&u64::MAX.to_le_bytes());
        bytes.extend_from_slice(&(MAX_NAME_LEN + 1).to_le_bytes());
        let err = TraceReader::from_bytes(Bytes::from(bytes)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        // Name bytes that are not UTF-8.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC_V2);
        bytes.extend_from_slice(&64u64.to_le_bytes());
        bytes.extend_from_slice(&u64::MAX.to_le_bytes());
        bytes.extend_from_slice(&2u32.to_le_bytes());
        bytes.extend_from_slice(&[0xFF, 0xFE]);
        bytes.extend_from_slice(&2u64.to_le_bytes());
        let err = TraceReader::from_bytes(Bytes::from(bytes)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    #[should_panic(expected = "outside trace space")]
    fn writer_rejects_out_of_space_address() {
        let mut w = mem_writer(16);
        let _ = w.push(MemReq::write(16));
    }

    fn temp_trace(label: &str, build: impl FnOnce(&mut TraceWriter<File>)) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("sawl-trace-file-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("{label}.trc"));
        let file = File::create(&path).unwrap();
        let mut w = TraceWriter::with_name(file, 1 << 10, "uniform").unwrap();
        build(&mut w);
        w.finish().unwrap();
        path
    }

    #[test]
    fn file_stream_matches_in_memory_replay() {
        let path = temp_trace("match", |w| {
            let mut gen = Uniform::new(1 << 10, 0.5, 3);
            w.record(&mut gen, 700).unwrap();
        });
        let mut on_disk = TraceFileStream::open(&path).unwrap();
        let mut in_mem = TraceReader::from_reader(File::open(&path).unwrap()).unwrap();
        assert_eq!(on_disk.len(), 700);
        assert_eq!(on_disk.name(), "uniform");
        assert_eq!(on_disk.space_lines(), in_mem.space_lines());
        // Run past the end so the wrap-around seek is exercised too.
        for i in 0..2_000 {
            assert_eq!(on_disk.next_req(), in_mem.next_req(), "record {i}");
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn file_stream_fill_runs_matches_scalar() {
        let path = temp_trace("runs", |w| {
            // Repeats force coalescing; 700 records against a 512 scratch
            // forces wrap-around inside a batch.
            for i in 0..700u64 {
                w.push(MemReq::write((i / 7) % 64)).unwrap();
            }
        });
        let mut runs_side = TraceFileStream::open(&path).unwrap();
        let mut scalar_side = TraceFileStream::open(&path).unwrap();
        let mut runs = Vec::new();
        let mut scratch = [MemReq::read(0); 512];
        for _ in 0..4 {
            let covered = runs_side.fill_runs(&mut runs, &mut scratch);
            assert_eq!(covered, 512);
            assert!(runs.len() < 512, "no coalescing happened");
            for run in &runs {
                for _ in 0..run.len {
                    let expect = scalar_side.next_req();
                    assert_eq!((run.la, run.write), (expect.la, expect.write));
                }
            }
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn file_stream_cursor_round_trips() {
        let path = temp_trace("cursor", |w| {
            let mut gen = Uniform::new(1 << 10, 0.5, 9);
            w.record(&mut gen, 300).unwrap();
        });
        let mut reference = TraceFileStream::open(&path).unwrap();
        for _ in 0..123 {
            reference.next_req();
        }
        assert_eq!(reference.cursor_kind(), CursorKind::State);
        let mut w = sawl_ckpt::Writer::new();
        reference.cursor_save(&mut w);
        let payload = w.into_payload();

        let mut restored = TraceFileStream::open(&path).unwrap();
        let mut r = sawl_ckpt::Reader::new(&payload);
        restored.cursor_restore(&mut r).unwrap();
        r.finish().unwrap();
        for i in 0..600 {
            assert_eq!(restored.next_req(), reference.next_req(), "diverged at {i}");
        }

        // A cursor past the trace is rejected, not silently wrapped.
        let mut w = sawl_ckpt::Writer::new();
        w.put_u64(10_000);
        let payload = w.into_payload();
        let mut fresh = TraceFileStream::open(&path).unwrap();
        let err = fresh.cursor_restore(&mut sawl_ckpt::Reader::new(&payload)).unwrap_err();
        assert!(matches!(err, sawl_ckpt::CkptError::Corrupt(_)));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn file_stream_rejects_the_same_taxonomy() {
        let dir = std::env::temp_dir().join(format!("sawl-trace-reject-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let write = |label: &str, bytes: &[u8]| {
            let p = dir.join(format!("{label}.trc"));
            std::fs::write(&p, bytes).unwrap();
            p
        };
        let short = write("short", &[0u8; 10]);
        assert_eq!(TraceFileStream::open(&short).unwrap_err().kind(), io::ErrorKind::UnexpectedEof);
        let bad_magic = write("magic", &[0u8; 32]);
        assert_eq!(
            TraceFileStream::open(&bad_magic).unwrap_err().kind(),
            io::ErrorKind::InvalidData
        );
        let mut ok = Vec::new();
        ok.extend_from_slice(MAGIC_V2);
        ok.extend_from_slice(&64u64.to_le_bytes());
        ok.extend_from_slice(&u64::MAX.to_le_bytes());
        ok.extend_from_slice(&0u32.to_le_bytes());
        let empty = write("empty", &ok);
        assert_eq!(TraceFileStream::open(&empty).unwrap_err().kind(), io::ErrorKind::InvalidData);
        ok.extend_from_slice(&[1, 2, 3]);
        let torn = write("torn", &ok);
        assert_eq!(TraceFileStream::open(&torn).unwrap_err().kind(), io::ErrorKind::InvalidData);
        std::fs::remove_dir_all(&dir).ok();
    }
}
