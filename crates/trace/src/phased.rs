//! Stream combinators: probabilistic mixes and time-phased schedules.
//!
//! Real applications interleave access patterns (a scan over one array, a
//! pointer-chase through another) and move through execution phases whose
//! locality differs (the behaviour that drives SAWL's merge/split decisions
//! in Figs. 12–14). [`Mix`] interleaves child streams by weight per request;
//! [`Phased`] runs children back-to-back for fixed request budgets and then
//! cycles.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::{AddressStream, CursorKind, MemReq, WearObservation};

/// Weighted per-request interleaving of child streams.
pub struct Mix {
    children: Vec<(f64, Box<dyn AddressStream + Send>)>,
    cumulative: Vec<f64>,
    rng: SmallRng,
    space: u64,
    label: String,
}

impl Mix {
    /// Build a mix from `(weight, stream)` pairs. Weights are normalized;
    /// all children must share the same address-space size.
    pub fn new(children: Vec<(f64, Box<dyn AddressStream + Send>)>, seed: u64) -> Self {
        assert!(!children.is_empty(), "mix needs at least one child");
        assert!(children.iter().all(|(w, _)| *w > 0.0), "weights must be positive");
        let space = children[0].1.space_lines();
        assert!(
            children.iter().all(|(_, c)| c.space_lines() == space),
            "all mix children must share one address space"
        );
        let total: f64 = children.iter().map(|(w, _)| w).sum();
        let mut acc = 0.0;
        let cumulative = children
            .iter()
            .map(|(w, _)| {
                acc += w / total;
                acc
            })
            .collect();
        let label = format!(
            "mix({})",
            children.iter().map(|(_, c)| c.name()).collect::<Vec<_>>().join("+")
        );
        Self { children, cumulative, rng: SmallRng::seed_from_u64(seed), space, label }
    }
}

impl AddressStream for Mix {
    fn next_req(&mut self) -> MemReq {
        let u = self.rng.random::<f64>();
        // Linear scan: mixes have a handful of children.
        let idx = self.cumulative.iter().position(|&c| u < c).unwrap_or(self.children.len() - 1);
        self.children[idx].1.next_req()
    }

    fn space_lines(&self) -> u64 {
        self.space
    }

    fn name(&self) -> &str {
        &self.label
    }

    fn wants_observation(&self) -> bool {
        self.children.iter().any(|(_, c)| c.wants_observation())
    }

    fn observe_wear(&mut self, obs: &WearObservation) {
        for (_, c) in &mut self.children {
            c.observe_wear(obs);
        }
    }

    fn cursor_kind(&self) -> CursorKind {
        combined_cursor_kind(self.children.iter().map(|(_, c)| c.cursor_kind()))
    }

    fn cursor_save(&self, w: &mut sawl_ckpt::Writer) {
        w.put_rng(self.rng.state());
        for (_, c) in &self.children {
            c.cursor_save(w);
        }
    }

    fn cursor_restore(&mut self, r: &mut sawl_ckpt::Reader) -> Result<(), sawl_ckpt::CkptError> {
        self.rng = SmallRng::from_state(r.get_rng()?);
        for (_, c) in &mut self.children {
            c.cursor_restore(r)?;
        }
        Ok(())
    }
}

/// A combinator's cursor is serializable exactly when every child's is.
pub(crate) fn combined_cursor_kind(kinds: impl Iterator<Item = CursorKind>) -> CursorKind {
    let mut combined = CursorKind::State;
    for k in kinds {
        if k == CursorKind::Replay {
            combined = CursorKind::Replay;
        }
    }
    combined
}

/// Time-phased schedule: each child runs for its request budget, then the
/// next takes over; the schedule cycles forever.
pub struct Phased {
    children: Vec<(u64, Box<dyn AddressStream + Send>)>,
    current: usize,
    remaining: u64,
    space: u64,
    label: String,
}

impl Phased {
    /// Build a schedule from `(requests, stream)` pairs.
    pub fn new(children: Vec<(u64, Box<dyn AddressStream + Send>)>) -> Self {
        assert!(!children.is_empty(), "phased schedule needs at least one child");
        assert!(children.iter().all(|(n, _)| *n > 0), "phase lengths must be non-zero");
        let space = children[0].1.space_lines();
        assert!(
            children.iter().all(|(_, c)| c.space_lines() == space),
            "all phases must share one address space"
        );
        let label = format!(
            "phased({})",
            children.iter().map(|(_, c)| c.name()).collect::<Vec<_>>().join(">")
        );
        let remaining = children[0].0;
        Self { children, current: 0, remaining, space, label }
    }
}

impl AddressStream for Phased {
    fn next_req(&mut self) -> MemReq {
        if self.remaining == 0 {
            self.current = (self.current + 1) % self.children.len();
            self.remaining = self.children[self.current].0;
        }
        self.remaining -= 1;
        self.children[self.current].1.next_req()
    }

    fn fill(&mut self, buf: &mut [MemReq]) -> usize {
        // Delegate whole in-phase runs to the child's own batched path, so
        // a phased schedule costs one virtual dispatch per run instead of
        // one per request.
        let mut i = 0;
        while i < buf.len() {
            if self.remaining == 0 {
                self.current = (self.current + 1) % self.children.len();
                self.remaining = self.children[self.current].0;
            }
            let run = self.remaining.min((buf.len() - i) as u64) as usize;
            self.children[self.current].1.fill(&mut buf[i..i + run]);
            self.remaining -= run as u64;
            i += run;
        }
        buf.len()
    }

    fn space_lines(&self) -> u64 {
        self.space
    }

    fn name(&self) -> &str {
        &self.label
    }

    fn wants_observation(&self) -> bool {
        self.children.iter().any(|(_, c)| c.wants_observation())
    }

    fn observe_wear(&mut self, obs: &WearObservation) {
        for (_, c) in &mut self.children {
            c.observe_wear(obs);
        }
    }

    fn cursor_kind(&self) -> CursorKind {
        combined_cursor_kind(self.children.iter().map(|(_, c)| c.cursor_kind()))
    }

    fn cursor_save(&self, w: &mut sawl_ckpt::Writer) {
        w.put_u64(self.current as u64);
        w.put_u64(self.remaining);
        for (_, c) in &self.children {
            c.cursor_save(w);
        }
    }

    fn cursor_restore(&mut self, r: &mut sawl_ckpt::Reader) -> Result<(), sawl_ckpt::CkptError> {
        let current = r.get_u64()? as usize;
        if current >= self.children.len() {
            return Err(sawl_ckpt::CkptError::Corrupt(format!(
                "phase cursor {current} past the {}-phase schedule",
                self.children.len()
            )));
        }
        self.current = current;
        self.remaining = r.get_u64()?;
        for (_, c) in &mut self.children {
            c.cursor_restore(r)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::patterns::SeqScan;
    use crate::Raa;

    #[test]
    fn mix_respects_weights() {
        let a = Box::new(Raa::new(0, 100));
        let b = Box::new(Raa::new(99, 100));
        let mut mix = Mix::new(vec![(3.0, a), (1.0, b)], 11);
        let total = 40_000;
        let hits_a = (0..total).filter(|_| mix.next_req().la == 0).count();
        let frac = hits_a as f64 / total as f64;
        assert!((frac - 0.75).abs() < 0.01, "weight-3 child got {frac}");
    }

    #[test]
    fn phased_switches_after_budget() {
        let a = Box::new(Raa::new(1, 10));
        let b = Box::new(Raa::new(2, 10));
        let mut p = Phased::new(vec![(3, a), (2, b)]);
        let seq: Vec<u64> = (0..10).map(|_| p.next_req().la).collect();
        assert_eq!(seq, vec![1, 1, 1, 2, 2, 1, 1, 1, 2, 2]);
    }

    #[test]
    fn phased_children_keep_internal_state_across_phases() {
        let scan = Box::new(SeqScan::new(10, 0, 4, 1.0, 0));
        let other = Box::new(Raa::new(9, 10));
        let mut p = Phased::new(vec![(2, scan), (1, other)]);
        let seq: Vec<u64> = (0..6).map(|_| p.next_req().la).collect();
        // Scan resumes at 2 after the interleaved RAA phase.
        assert_eq!(seq, vec![0, 1, 9, 2, 3, 9]);
    }

    #[test]
    #[should_panic(expected = "share one address space")]
    fn mix_rejects_mismatched_spaces() {
        let a = Box::new(Raa::new(0, 100));
        let b = Box::new(Raa::new(0, 200));
        let _ = Mix::new(vec![(1.0, a), (1.0, b)], 0);
    }

    #[test]
    fn names_compose() {
        let a = Box::new(Raa::new(0, 8));
        let b = Box::new(Raa::new(1, 8));
        let mix = Mix::new(vec![(1.0, a), (1.0, b)], 0);
        assert_eq!(mix.name(), "mix(raa+raa)");
    }
}
