//! Property tests for the binary trace container: any request sequence,
//! any name, either finish path (seekable backpatch vs streaming
//! until-EOF marker) must round-trip bit-exactly — and every structured
//! corruption must come back as a typed `io::Error`, never a panic or a
//! silently wrong replay.

use proptest::prelude::*;

use sawl_trace::{AddressStream, MemReq, TraceReader, TraceWriter};

/// Offset of the record-count field in both header versions.
const COUNT_OFFSET: usize = 16;

fn encode(space: u64, name: &str, reqs: &[MemReq], streaming: bool) -> (Vec<u8>, u64) {
    let mut w = TraceWriter::with_name(std::io::Cursor::new(Vec::new()), space, name).unwrap();
    for r in reqs {
        w.push(*r).unwrap();
    }
    let (out, count) = if streaming { w.finish_streaming().unwrap() } else { w.finish().unwrap() };
    (out.into_inner(), count)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48 })]

    #[test]
    fn any_sequence_round_trips_through_both_finish_paths(
        space_shift in 1u32..40,
        name_pick in 0u64..6,
        raw in prop::collection::vec((any::<u64>(), any::<bool>()), 1..300),
        streaming in any::<bool>(),
    ) {
        let space = 1u64 << space_shift;
        let name = match name_pick {
            0 => String::new(),
            1 => "ycsb".into(),
            2 => "phased(ycsb>uniform)".into(),
            3 => "multi(zipf+uniform)".into(),
            4 => "gc-feedback".into(),
            _ => format!("wl-{name_pick}-{space_shift}"),
        };
        let reqs: Vec<MemReq> =
            raw.iter().map(|&(la, write)| MemReq { la: la % space, write }).collect();
        let (bytes, count) = encode(space, &name, &reqs, streaming);
        assert_eq!(count, reqs.len() as u64);

        // The count field: exact after a seekable finish, the u64::MAX
        // until-EOF marker after a streaming finish.
        let declared =
            u64::from_le_bytes(bytes[COUNT_OFFSET..COUNT_OFFSET + 8].try_into().unwrap());
        if streaming {
            assert_eq!(declared, u64::MAX);
        } else {
            assert_eq!(declared, count);
        }

        let mut r = TraceReader::from_reader(&bytes[..]).unwrap();
        assert_eq!(r.len(), reqs.len() as u64);
        assert_eq!(r.space_lines(), space);
        let expect = if name.is_empty() { "trace-replay" } else { name.as_str() };
        assert_eq!(r.name(), expect);
        for (i, want) in reqs.iter().enumerate() {
            assert_eq!(r.next_req(), *want, "record {i} diverged");
        }
    }

    #[test]
    fn structured_corruption_is_always_a_typed_error(
        space_shift in 1u32..30,
        raw in prop::collection::vec((any::<u64>(), any::<bool>()), 1..64),
        cut_pick in 0u64..1000,
        flavor in 0u64..4,
    ) {
        let space = 1u64 << space_shift;
        let reqs: Vec<MemReq> =
            raw.iter().map(|&(la, write)| MemReq { la: la % space, write }).collect();
        let (bytes, _) = encode(space, "prop", &reqs, false);

        let (mutated, must_fail) = match flavor {
            // Truncation anywhere: fails unless the cut severs whole
            // records off an until-EOF trace — so force an exact count
            // here, where any shorter length is a mismatch or a torn
            // record or a torn header.
            0 => {
                let cut = (cut_pick as usize) % bytes.len();
                (bytes[..cut].to_vec(), true)
            }
            // Wrong magic.
            1 => {
                let mut b = bytes.clone();
                b[(cut_pick as usize) % 8] ^= 0x40;
                (b, true)
            }
            // Declared count inflated past the payload.
            2 => {
                let mut b = bytes.clone();
                let lie = (reqs.len() as u64) + 1 + cut_pick;
                b[COUNT_OFFSET..COUNT_OFFSET + 8].copy_from_slice(&lie.to_le_bytes());
                (b, true)
            }
            // Trailing garbage that is not a whole number of records.
            _ => {
                let mut b = bytes.clone();
                b.extend_from_slice(&[0xAB; 3]);
                (b, true)
            }
        };
        let outcome = TraceReader::from_reader(&mutated[..]);
        if must_fail {
            assert!(
                outcome.is_err(),
                "flavor {flavor} cut {cut_pick}: corrupt trace parsed successfully"
            );
        }
    }
}

#[test]
fn until_eof_marker_with_max_count_replays_every_record() {
    // The streaming path's u64::MAX marker must mean "as many whole
    // records as the payload holds".
    for n in [1usize, 2, 255, 4096] {
        let reqs: Vec<MemReq> =
            (0..n).map(|i| MemReq { la: (i as u64 * 37) % 512, write: i % 3 != 0 }).collect();
        let (bytes, count) = encode(512, "eof", &reqs, true);
        assert_eq!(count, n as u64);
        let mut r = TraceReader::from_reader(&bytes[..]).unwrap();
        assert_eq!(r.len(), n as u64);
        for want in &reqs {
            assert_eq!(r.next_req(), *want);
        }
    }
}

#[test]
fn zero_record_traces_are_rejected_as_unreplayable() {
    // A trace with no records cannot drive a run (streams are pulled in
    // full blocks), so both finish paths produce a file the reader
    // refuses with a typed error.
    for streaming in [false, true] {
        let (bytes, count) = encode(512, "empty", &[], streaming);
        assert_eq!(count, 0);
        let err = TraceReader::from_reader(&bytes[..]).unwrap_err();
        assert!(err.to_string().contains("empty trace"), "{err}");
    }
}
