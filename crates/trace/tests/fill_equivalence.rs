//! Batched `fill` must be bit-identical to scalar `next_req` for every
//! generator — the block pump in the simulation driver relies on it.

use sawl_trace::{
    AddressStream, Bpa, Hotspot, MemReq, Mix, Phased, Raa, SeqScan, Stride, Uniform, ALL_BENCHMARKS,
};

/// Drain `total` requests scalar-wise from one stream and block-wise (with
/// an awkward mix of block sizes) from an identically-constructed twin,
/// then compare the full sequences.
fn assert_fill_matches_scalar(
    mut scalar: Box<dyn AddressStream>,
    mut batched: Box<dyn AddressStream>,
    total: usize,
    label: &str,
) {
    let expected: Vec<MemReq> = (0..total).map(|_| scalar.next_req()).collect();
    let mut got: Vec<MemReq> = Vec::with_capacity(total);
    let mut buf = vec![MemReq::read(0); 257];
    // Odd sizes on purpose: misaligned with dwell times and phase lengths.
    for &chunk in [1usize, 7, 64, 257, 100].iter().cycle() {
        if got.len() >= total {
            break;
        }
        let n = chunk.min(total - got.len());
        let filled = batched.fill(&mut buf[..n]);
        assert_eq!(filled, n, "{label}: fill shorted a block");
        got.extend_from_slice(&buf[..n]);
    }
    assert_eq!(got, expected, "{label}: batched sequence diverged from scalar");
}

#[test]
fn uniform_fill_matches_scalar() {
    assert_fill_matches_scalar(
        Box::new(Uniform::new(1 << 12, 0.37, 42)),
        Box::new(Uniform::new(1 << 12, 0.37, 42)),
        10_000,
        "uniform",
    );
}

#[test]
fn raa_fill_matches_scalar() {
    assert_fill_matches_scalar(
        Box::new(Raa::new(5, 1 << 10)),
        Box::new(Raa::new(5, 1 << 10)),
        5_000,
        "raa",
    );
}

#[test]
fn bpa_fill_matches_scalar_across_dwell_boundaries() {
    for dwell in [1u64, 2, 13, 256, 9_999] {
        assert_fill_matches_scalar(
            Box::new(Bpa::new(1 << 14, dwell, 7)),
            Box::new(Bpa::new(1 << 14, dwell, 7)),
            20_000,
            &format!("bpa/dwell={dwell}"),
        );
    }
}

#[test]
fn spec_models_fill_matches_scalar() {
    for bench in ALL_BENCHMARKS {
        assert_fill_matches_scalar(
            Box::new(bench.stream(1 << 14, 11)),
            Box::new(bench.stream(1 << 14, 11)),
            10_000,
            bench.name(),
        );
    }
}

#[test]
fn soplex_fill_matches_scalar_across_phase_switches() {
    // Soplex switches phases; drive past at least one switch. Its stock
    // phase length is millions of requests, so cross the boundary cheaply
    // with a phased composite instead: two scans with tiny phase budgets.
    let mk = || {
        let a = Box::new(SeqScan::new(64, 0, 16, 1.0, 3));
        let b = Box::new(SeqScan::new(64, 16, 16, 0.5, 4));
        Box::new(Phased::new(vec![(11, a), (5, b)]))
    };
    assert_fill_matches_scalar(mk(), mk(), 5_000, "phased");
}

#[test]
fn mix_and_pattern_streams_fill_matches_scalar() {
    let mk_mix = || {
        let a = Box::new(Uniform::new(256, 1.0, 1));
        let b = Box::new(Hotspot::new(256, 0, 16, 0.9, 0.5, 2));
        Box::new(Mix::new(vec![(2.0, a), (1.0, b)], 9))
    };
    assert_fill_matches_scalar(mk_mix(), mk_mix(), 5_000, "mix");
    assert_fill_matches_scalar(
        Box::new(Stride::new(512, 0, 128, 5, 0.8, 3)),
        Box::new(Stride::new(512, 0, 128, 5, 0.8, 3)),
        5_000,
        "stride",
    );
}
