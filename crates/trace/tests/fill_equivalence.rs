//! Batched `fill` must be bit-identical to scalar `next_req` for every
//! generator — the block pump in the simulation driver relies on it.

use sawl_trace::{
    AddressStream, Bpa, GcFeedback, Hotspot, Interleave, MemReq, Mix, Phased, Raa, ReqRun, SeqScan,
    Stride, Uniform, WearObservation, Ycsb, ZipfStream, ALL_BENCHMARKS,
};

/// Drain `total` requests scalar-wise from one stream and block-wise (with
/// an awkward mix of block sizes) from an identically-constructed twin,
/// then compare the full sequences.
fn assert_fill_matches_scalar(
    mut scalar: Box<dyn AddressStream>,
    mut batched: Box<dyn AddressStream>,
    total: usize,
    label: &str,
) {
    let expected: Vec<MemReq> = (0..total).map(|_| scalar.next_req()).collect();
    let mut got: Vec<MemReq> = Vec::with_capacity(total);
    let mut buf = vec![MemReq::read(0); 257];
    // Odd sizes on purpose: misaligned with dwell times and phase lengths.
    for &chunk in [1usize, 7, 64, 257, 100].iter().cycle() {
        if got.len() >= total {
            break;
        }
        let n = chunk.min(total - got.len());
        let filled = batched.fill(&mut buf[..n]);
        assert_eq!(filled, n, "{label}: fill shorted a block");
        got.extend_from_slice(&buf[..n]);
    }
    assert_eq!(got, expected, "{label}: batched sequence diverged from scalar");
}

#[test]
fn uniform_fill_matches_scalar() {
    assert_fill_matches_scalar(
        Box::new(Uniform::new(1 << 12, 0.37, 42)),
        Box::new(Uniform::new(1 << 12, 0.37, 42)),
        10_000,
        "uniform",
    );
}

#[test]
fn raa_fill_matches_scalar() {
    assert_fill_matches_scalar(
        Box::new(Raa::new(5, 1 << 10)),
        Box::new(Raa::new(5, 1 << 10)),
        5_000,
        "raa",
    );
}

#[test]
fn bpa_fill_matches_scalar_across_dwell_boundaries() {
    for dwell in [1u64, 2, 13, 256, 9_999] {
        assert_fill_matches_scalar(
            Box::new(Bpa::new(1 << 14, dwell, 7)),
            Box::new(Bpa::new(1 << 14, dwell, 7)),
            20_000,
            &format!("bpa/dwell={dwell}"),
        );
    }
}

#[test]
fn spec_models_fill_matches_scalar() {
    for bench in ALL_BENCHMARKS {
        assert_fill_matches_scalar(
            Box::new(bench.stream(1 << 14, 11)),
            Box::new(bench.stream(1 << 14, 11)),
            10_000,
            bench.name(),
        );
    }
}

#[test]
fn soplex_fill_matches_scalar_across_phase_switches() {
    // Soplex switches phases; drive past at least one switch. Its stock
    // phase length is millions of requests, so cross the boundary cheaply
    // with a phased composite instead: two scans with tiny phase budgets.
    let mk = || {
        let a = Box::new(SeqScan::new(64, 0, 16, 1.0, 3));
        let b = Box::new(SeqScan::new(64, 16, 16, 0.5, 4));
        Box::new(Phased::new(vec![(11, a), (5, b)]))
    };
    assert_fill_matches_scalar(mk(), mk(), 5_000, "phased");
}

/// Drain blocks through `fill_runs` and compare the expanded runs
/// against a scalar twin — and require the runs to be maximally
/// coalesced (no two adjacent runs mergeable), since the batched pump's
/// speed rests on that.
fn assert_fill_runs_matches_scalar(
    mut scalar: Box<dyn AddressStream>,
    mut batched: Box<dyn AddressStream>,
    blocks: usize,
    label: &str,
) {
    let mut scratch = vec![MemReq::read(0); 499]; // odd on purpose
    let mut runs: Vec<ReqRun> = Vec::new();
    for b in 0..blocks {
        let consumed = batched.fill_runs(&mut runs, &mut scratch);
        assert_eq!(consumed, scratch.len() as u64, "{label}: fill_runs shorted block {b}");
        let mut expanded = Vec::with_capacity(scratch.len());
        for run in &runs {
            for _ in 0..run.len {
                expanded.push(MemReq { la: run.la, write: run.write });
            }
        }
        let expected: Vec<MemReq> = (0..scratch.len()).map(|_| scalar.next_req()).collect();
        assert_eq!(expanded, expected, "{label}: block {b} runs diverged from scalar");
        for w in runs.windows(2) {
            assert!(
                w[0].la != w[1].la || w[0].write != w[1].write,
                "{label}: block {b} left adjacent mergeable runs"
            );
        }
    }
}

#[test]
fn ycsb_fill_and_fill_runs_match_scalar_across_rotations() {
    // 499-request blocks against a 1000-request rotation clock: window
    // slides land mid-block from the second block on.
    let mk = || Box::new(Ycsb::new(1 << 12, 256, 1.1, 0.7, 1_000, 64, 9));
    assert_fill_matches_scalar(mk(), mk(), 10_000, "ycsb");
    assert_fill_runs_matches_scalar(mk(), mk(), 8, "ycsb runs");
}

#[test]
fn interleave_fill_and_fill_runs_match_scalar_across_slices() {
    let mk = || {
        let a: Box<dyn AddressStream + Send> = Box::new(ZipfStream::new(1 << 12, 1.2, 0.9, 3));
        let b: Box<dyn AddressStream + Send> = Box::new(Uniform::new(1 << 12, 0.5, 4));
        Box::new(Interleave::new(vec![a, b], 64))
    };
    assert_fill_matches_scalar(mk(), mk(), 10_000, "interleave");
    assert_fill_runs_matches_scalar(mk(), mk(), 8, "interleave runs");
}

#[test]
fn gc_feedback_fill_and_fill_runs_match_scalar_open_loop() {
    // With no observations the stream stays at its base threshold; the
    // batched paths must still track the scalar draw-for-draw.
    let mk = || Box::new(GcFeedback::new(1 << 12, 1.1, 0.8, 0.3, 0.05, 0.1, 256, 11));
    assert_fill_matches_scalar(mk(), mk(), 10_000, "gc-feedback");
    assert_fill_runs_matches_scalar(mk(), mk(), 8, "gc-feedback runs");
}

#[test]
fn gc_feedback_fill_runs_matches_scalar_with_synced_observations() {
    // The driver feeds observations immediately before every block pull;
    // twins fed identical observations at identical request offsets must
    // stay bit-identical even as the feedback trips GC bursts on one
    // side of a block boundary and drains them on the other.
    let mk = || GcFeedback::new(1 << 12, 1.1, 0.8, 0.3, 0.05, 0.1, 256, 11);
    let mut scalar = mk();
    let mut batched = mk();
    let mut scratch = vec![MemReq::read(0); 1_024];
    let mut runs: Vec<ReqRun> = Vec::new();
    let mut demand = 1_000u64;
    for block in 0..24u64 {
        // Wear statistics that swing the dynamic threshold both ways:
        // WAF climbs and falls, the variance term ramps steadily.
        let obs = WearObservation {
            demand_writes: demand,
            overhead_writes: demand * (1 + block % 3),
            wear_mean: 10.0 + block as f64,
            wear_cov: 0.02 * block as f64,
            wear_max: 100 + block as u32,
        };
        scalar.observe_wear(&obs);
        batched.observe_wear(&obs);
        demand += 800;

        let consumed = batched.fill_runs(&mut runs, &mut scratch);
        assert_eq!(consumed, scratch.len() as u64, "block {block} shorted");
        let mut expanded = Vec::with_capacity(scratch.len());
        for run in &runs {
            for _ in 0..run.len {
                expanded.push(MemReq { la: run.la, write: run.write });
            }
        }
        let expected: Vec<MemReq> = (0..scratch.len()).map(|_| scalar.next_req()).collect();
        assert_eq!(expanded, expected, "block {block} diverged under feedback");
    }
}

#[test]
fn mix_and_pattern_streams_fill_matches_scalar() {
    let mk_mix = || {
        let a = Box::new(Uniform::new(256, 1.0, 1));
        let b = Box::new(Hotspot::new(256, 0, 16, 0.9, 0.5, 2));
        Box::new(Mix::new(vec![(2.0, a), (1.0, b)], 9))
    };
    assert_fill_matches_scalar(mk_mix(), mk_mix(), 5_000, "mix");
    assert_fill_matches_scalar(
        Box::new(Stride::new(512, 0, 128, 5, 0.8, 3)),
        Box::new(Stride::new(512, 0, 128, 5, 0.8, 3)),
        5_000,
        "stride",
    );
}
