//! In-process daemon tests: protocol over real TCP, graceful shutdown,
//! restart recovery, and a bounded multi-tenant soak.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use sawl_serve::{Daemon, Endpoint, Request, Response, ServeConfig};
use sawl_simctl::{
    run_lifetime, DeviceSpec, LifetimeExperiment, SchemeSpec, TelemetrySpec, WorkloadSpec,
};

fn small_exp(id: &str, cap: u64) -> LifetimeExperiment {
    LifetimeExperiment {
        id: id.into(),
        scheme: SchemeSpec::PcmS { region_lines: 4, period: 16 },
        workload: WorkloadSpec::Bpa { writes_per_target: 512 },
        data_lines: 1 << 10,
        device: DeviceSpec { endurance: 1_000, ..Default::default() },
        max_demand_writes: cap,
        fault: None,
        telemetry: Some(TelemetrySpec::with_stride(10_000)),
        timing: None,
    }
}

fn unique_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sawl-serve-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// One request line, one response line, over a fresh connection.
fn call(addr: SocketAddr, req: &Request) -> Response {
    let stream = TcpStream::connect(addr).expect("daemon is listening");
    let mut reader = BufReader::new(stream);
    let json = serde_json::to_string(req).unwrap();
    reader.get_mut().write_all(json.as_bytes()).unwrap();
    reader.get_mut().write_all(b"\n").unwrap();
    reader.get_mut().flush().unwrap();
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    serde_json::from_str(line.trim()).expect("daemon answers valid JSON")
}

/// Poll until every named tenant reports `finished` (or panic at the deadline).
fn wait_finished(addr: SocketAddr, tenants: &[&str], deadline: Duration) {
    let start = Instant::now();
    loop {
        let Response::Status { tenants: status } = call(addr, &Request::Status) else {
            panic!("status request failed");
        };
        let done = tenants.iter().all(|name| {
            status.iter().any(|t| {
                assert_ne!(t.state, "failed", "tenant {} failed: {:?}", t.tenant, t.error);
                t.tenant == *name && t.state == "finished"
            })
        });
        if done {
            return;
        }
        assert!(start.elapsed() < deadline, "tenants still running after {deadline:?}");
        std::thread::sleep(Duration::from_millis(20));
    }
}

struct Fixture {
    addr: SocketAddr,
    daemon: Arc<Daemon>,
    serve: Option<std::thread::JoinHandle<()>>,
}

impl Fixture {
    fn start(cfg: ServeConfig) -> Self {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let daemon = Daemon::new(cfg).unwrap();
        let serve = {
            let daemon = Arc::clone(&daemon);
            std::thread::spawn(move || {
                daemon.serve(vec![Endpoint::Tcp(listener)], || false).unwrap();
            })
        };
        Fixture { addr, daemon, serve: Some(serve) }
    }

    fn shutdown(mut self) {
        assert!(matches!(call(self.addr, &Request::Shutdown), Response::ShuttingDown));
        self.serve.take().unwrap().join().unwrap();
    }
}

fn tenant_files(dir: &Path, name: &str) -> [PathBuf; 4] {
    [
        dir.join(format!("{name}.spec.json")),
        dir.join(format!("{name}.ckpt")),
        dir.join(format!("{name}.result.json")),
        dir.join(format!("{name}.telemetry.jsonl")),
    ]
}

#[test]
fn submit_run_and_fetch_results_over_tcp() {
    let dir = unique_dir("tcp");
    let mut cfg = ServeConfig::new(&dir);
    cfg.workers = 2;
    cfg.slice_batches = 4;
    let fx = Fixture::start(cfg);

    let exp_a = small_exp("serve/tcp-a", 60_000);
    let exp_b = small_exp("serve/tcp-b", 40_000);
    for (name, exp) in [("a", &exp_a), ("b", &exp_b)] {
        let resp = call(fx.addr, &Request::Submit { tenant: name.into(), spec: exp.clone() });
        assert!(matches!(resp, Response::Ok), "{resp:?}");
    }
    assert!(matches!(call(fx.addr, &Request::Ping), Response::Pong));
    wait_finished(fx.addr, &["a", "b"], Duration::from_secs(60));

    for (name, exp) in [("a", &exp_a), ("b", &exp_b)] {
        let reference = run_lifetime(exp).unwrap();
        let Response::Result { tenant, result } =
            call(fx.addr, &Request::Result { tenant: name.into() })
        else {
            panic!("result fetch failed for {name}");
        };
        assert_eq!(tenant, name);
        assert_eq!(*result, reference, "served result diverged for {name}");
        // Byte-identical over the wire too.
        assert_eq!(
            serde_json::to_string(&*result).unwrap(),
            serde_json::to_string(&reference).unwrap(),
        );
        for path in tenant_files(&dir, name) {
            assert!(path.exists(), "missing {}", path.display());
        }
        // The streamed telemetry file is the series' canonical JSON-lines.
        let series = reference.telemetry.as_ref().unwrap();
        assert_eq!(
            std::fs::read_to_string(dir.join(format!("{name}.telemetry.jsonl"))).unwrap(),
            series.to_json_lines(),
        );
    }

    fx.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bad_submissions_are_rejected_with_typed_errors() {
    let dir = unique_dir("reject");
    let fx = Fixture::start(ServeConfig::new(&dir));

    let exp = small_exp("serve/reject", 20_000);
    // Path-hostile name.
    let resp = call(fx.addr, &Request::Submit { tenant: "../evil".into(), spec: exp.clone() });
    assert!(
        matches!(&resp, Response::Error { message } if message.contains("invalid tenant name")),
        "{resp:?}"
    );
    // Timing specs cannot be checkpointed, so the daemon refuses them.
    let mut timed = exp.clone();
    timed.timing = Some(sawl_simctl::TimingSpec::default());
    let resp = call(fx.addr, &Request::Submit { tenant: "timed".into(), spec: timed });
    assert!(matches!(&resp, Response::Error { message } if message.contains("timing")), "{resp:?}");
    // Duplicates.
    assert!(matches!(
        call(fx.addr, &Request::Submit { tenant: "dup".into(), spec: exp.clone() }),
        Response::Ok
    ));
    let resp = call(fx.addr, &Request::Submit { tenant: "dup".into(), spec: exp });
    assert!(
        matches!(&resp, Response::Error { message } if message.contains("already exists")),
        "{resp:?}"
    );
    // Unknown tenants.
    let resp = call(fx.addr, &Request::Result { tenant: "ghost".into() });
    assert!(
        matches!(&resp, Response::Error { message } if message.contains("no tenant")),
        "{resp:?}"
    );
    // Malformed lines answer with an error instead of dropping the link.
    {
        let stream = TcpStream::connect(fx.addr).unwrap();
        let mut reader = BufReader::new(stream);
        reader.get_mut().write_all(b"{\"what\": 1}\n\"Ping\"\n").unwrap();
        reader.get_mut().flush().unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert!(line.contains("malformed request"), "{line}");
        line.clear();
        reader.read_line(&mut line).unwrap();
        assert_eq!(line.trim(), "\"Pong\"");
    }

    fx.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn graceful_shutdown_checkpoints_and_restart_continues_byte_identically() {
    let dir = unique_dir("graceful");
    // Sized so the run takes a macroscopic fraction of a second even in
    // release builds: the test must reach the shutdown point mid-run.
    let mut exp = small_exp("serve/graceful", 4_000_000);
    exp.device.endurance = 20_000;
    let reference = run_lifetime(&exp).unwrap();

    // First daemon: let the tenant make some progress, then shut down.
    {
        let mut cfg = ServeConfig::new(&dir);
        cfg.workers = 1;
        cfg.slice_batches = 2;
        let fx = Fixture::start(cfg);
        assert!(matches!(
            call(fx.addr, &Request::Submit { tenant: "t".into(), spec: exp.clone() }),
            Response::Ok
        ));
        let start = Instant::now();
        loop {
            let Response::Status { tenants } =
                call(fx.addr, &Request::Tenant { tenant: "t".into() })
            else {
                panic!("status failed");
            };
            let t = &tenants[0];
            assert_ne!(t.state, "failed", "{:?}", t.error);
            if t.state == "finished" {
                panic!("tenant finished before the shutdown point; raise the cap");
            }
            if t.demand_writes > 0 {
                break;
            }
            assert!(start.elapsed() < Duration::from_secs(60), "tenant never progressed");
            std::thread::sleep(Duration::from_millis(10));
        }
        fx.shutdown();
        assert!(dir.join("t.ckpt").exists(), "graceful shutdown must checkpoint");
        assert!(!dir.join("t.result.json").exists(), "tenant must not have finished");
    }

    // Second daemon: recovery resumes the tenant and finishes it.
    {
        let fx = Fixture::start(ServeConfig::new(&dir));
        wait_finished(fx.addr, &["t"], Duration::from_secs(120));
        let Response::Result { result, .. } =
            call(fx.addr, &Request::Result { tenant: "t".into() })
        else {
            panic!("result fetch failed");
        };
        assert_eq!(*result, reference, "resumed run diverged from uninterrupted reference");
        fx.shutdown();
    }

    // Third daemon: a finished tenant stays finished with the same result.
    {
        let fx = Fixture::start(ServeConfig::new(&dir));
        let Response::Result { result, .. } =
            call(fx.addr, &Request::Result { tenant: "t".into() })
        else {
            panic!("result fetch failed after second restart");
        };
        assert_eq!(*result, reference);
        fx.shutdown();
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn uploaded_trace_replays_byte_identically_to_the_live_generator() {
    use sawl_trace::{AddressStream as _, TraceWriter};

    let dir = unique_dir("upload");
    let mut cfg = ServeConfig::new(&dir);
    cfg.workers = 2;
    cfg.slice_batches = 4;
    let fx = Fixture::start(cfg);

    // The live run: a drifting YCSB workload, capped small.
    let mut live = small_exp("serve/upload", 50_000);
    live.workload = WorkloadSpec::Ycsb {
        hot_lines: 128,
        exponent: 1.1,
        write_ratio: 0.8,
        rotate_every: 4_096,
        drift: 13,
    };
    let reference = run_lifetime(&live).unwrap();

    // Record the same generator to an in-memory trace, oversized so the
    // replayed run hits its demand-write cap before the trace runs out.
    let seed = sawl_simctl::stable_seed(&live.id);
    let mut stream = live.workload.try_build(live.data_lines, seed).unwrap();
    let mut w =
        TraceWriter::with_name(std::io::Cursor::new(Vec::new()), live.data_lines, stream.name())
            .unwrap();
    w.record(stream.as_mut(), 4 * live.max_demand_writes).unwrap();
    let (out, recorded) = w.finish().unwrap();
    let trace_bytes = out.into_inner();

    // Upload it and point a TraceFile submission at the stored path.
    let resp = call(
        fx.addr,
        &Request::UploadTrace {
            name: "ycsb-drift".into(),
            data: sawl_serve::b64::encode(&trace_bytes),
        },
    );
    let Response::TraceStored { path, requests, space_lines } = resp else {
        panic!("upload failed: {resp:?}");
    };
    assert_eq!(requests, recorded);
    assert_eq!(space_lines, live.data_lines);
    assert!(std::fs::read(&path).unwrap() == trace_bytes, "stored trace diverged");

    let mut replay = live.clone();
    replay.workload = WorkloadSpec::TraceFile { path };
    let resp = call(fx.addr, &Request::Submit { tenant: "replay".into(), spec: replay });
    assert!(matches!(resp, Response::Ok), "{resp:?}");
    wait_finished(fx.addr, &["replay"], Duration::from_secs(120));

    let Response::Result { result, .. } =
        call(fx.addr, &Request::Result { tenant: "replay".into() })
    else {
        panic!("result fetch failed");
    };
    assert_eq!(*result, reference, "trace replay diverged from the live generator");
    assert_eq!(
        serde_json::to_string(&*result).unwrap(),
        serde_json::to_string(&reference).unwrap(),
        "wire form must be byte-identical too"
    );

    fx.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn corrupt_trace_uploads_are_rejected_before_touching_disk() {
    let dir = unique_dir("upload-reject");
    let daemon = Daemon::new(ServeConfig::new(&dir)).unwrap();

    let cases: [(&str, Request, &str); 4] = [
        (
            "path-hostile name",
            Request::UploadTrace { name: "../evil".into(), data: String::new() },
            "invalid trace name",
        ),
        (
            "bad base64",
            Request::UploadTrace { name: "t".into(), data: "not base64!".into() },
            "base64",
        ),
        (
            "wrong magic",
            Request::UploadTrace { name: "t".into(), data: sawl_serve::b64::encode(&[0x41u8; 64]) },
            "bad trace magic",
        ),
        (
            "truncated header",
            Request::UploadTrace { name: "t".into(), data: sawl_serve::b64::encode(b"SAWLTRC2") },
            "shorter than header",
        ),
    ];
    for (what, req, needle) in cases {
        let resp = daemon.handle(req);
        let Response::Error { message } = resp else {
            panic!("{what}: expected an error, got {resp:?}");
        };
        assert!(message.contains(needle), "{what}: {message}");
    }
    assert!(
        !dir.join("t.trc").exists() && !dir.join("t.tmp").exists(),
        "rejected uploads must leave no file behind"
    );

    // A well-formed empty trace is storable and replaceable.
    let mut w = sawl_trace::TraceWriter::new(std::io::Cursor::new(Vec::new()), 64).unwrap();
    w.push(sawl_trace::MemReq { la: 1, write: true }).unwrap();
    let (out, _) = w.finish().unwrap();
    let good = out.into_inner();
    let resp = daemon
        .handle(Request::UploadTrace { name: "t".into(), data: sawl_serve::b64::encode(&good) });
    let Response::TraceStored { requests, space_lines, .. } = resp else {
        panic!("good upload failed: {resp:?}");
    };
    assert_eq!((requests, space_lines), (1, 64));
    assert!(dir.join("t.trc").exists());

    std::fs::remove_dir_all(&dir).ok();
}

/// Peak resident set of this process, from /proc (Linux only).
#[cfg(target_os = "linux")]
fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb * 1024)
}

#[test]
fn soak_64_tenants_complete_under_bounded_memory_and_shut_down_promptly() {
    let dir = unique_dir("soak");
    let mut cfg = ServeConfig::new(&dir);
    cfg.slice_batches = 2;
    let daemon = Daemon::new(cfg).unwrap();

    let names: Vec<String> = (0..64).map(|i| format!("soak-{i:02}")).collect();
    for name in &names {
        let resp = daemon.handle(Request::Submit {
            tenant: name.clone(),
            spec: small_exp(&format!("serve/{name}"), 20_000),
        });
        assert!(matches!(resp, Response::Ok), "{resp:?}");
    }

    // Drive without sockets: serve() honours the stop closure even with
    // no endpoints, so a watcher thread acts as the control plane.
    let stop = Arc::new(AtomicBool::new(false));
    let watcher = {
        let daemon = Arc::clone(&daemon);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let start = Instant::now();
            loop {
                let status = daemon.status();
                assert!(
                    status.iter().all(|t| t.state != "failed"),
                    "soak tenant failed: {status:?}"
                );
                if status.iter().all(|t| t.state == "finished") {
                    stop.store(true, Ordering::Release);
                    return;
                }
                assert!(
                    start.elapsed() < Duration::from_secs(300),
                    "soak did not complete in time"
                );
                std::thread::sleep(Duration::from_millis(50));
            }
        })
    };
    let quiesce = Instant::now();
    daemon.serve(Vec::new(), move || stop.load(Ordering::Acquire)).unwrap();
    watcher.join().unwrap();
    assert!(
        quiesce.elapsed() < Duration::from_secs(300),
        "serve did not quiesce within the deadline"
    );

    for name in &names {
        assert!(dir.join(format!("{name}.result.json")).exists(), "{name} left no result");
    }
    #[cfg(target_os = "linux")]
    if let Some(rss) = peak_rss_bytes() {
        // 64 tiny tenants (2^10-line devices) must stay far under 1 GiB;
        // the ceiling catches accidental per-tenant state blowups.
        assert!(rss < 1 << 30, "peak RSS {} MiB exceeds the soak ceiling", rss >> 20);
    }
    std::fs::remove_dir_all(&dir).ok();
}
