//! Crash realism against the real binary: SIGKILL a live daemon mid-run,
//! restart it, and pin that every tenant's resumed result — and its
//! streamed telemetry — is byte-identical to an uninterrupted run. Also
//! covers SIGTERM → graceful checkpoint-and-exit-0.
//!
//! The tenants come from `specs/serve_smoke.json` (one plain, one
//! fault-armed with stuck lines, transient faults, and scheduled power
//! losses), the same fixture the CI `serve-smoke` job drives.

#![cfg(unix)]

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use sawl_serve::{Request, Response};
use sawl_simctl::{run_lifetime, LifetimeExperiment};

const SMOKE_SPEC: &str = include_str!("../../../specs/serve_smoke.json");

fn smoke_tenants() -> Vec<(String, LifetimeExperiment)> {
    let doc: serde::Value = serde_json::from_str(SMOKE_SPEC).expect("smoke spec parses");
    let serde::Value::Arr(tenants) = doc.get("tenants").expect("tenants key").clone() else {
        panic!("tenants must be an array");
    };
    tenants
        .iter()
        .map(|entry| {
            let serde::Value::Str(name) = entry.get("tenant").expect("tenant name") else {
                panic!("tenant name must be a string");
            };
            let spec = serde::Deserialize::deserialize(entry.get("spec").expect("tenant spec"))
                .expect("tenant spec deserializes as a LifetimeExperiment");
            (name.clone(), spec)
        })
        .collect()
}

fn unique_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sawl-serve-crash-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

struct DaemonProc {
    child: Child,
    addr: String,
}

/// Spawn the real `sawl-serve` binary on a free port and parse the
/// bound address from its `listening on` line.
fn spawn_daemon(state_dir: &Path, extra: &[&str]) -> DaemonProc {
    let mut child = Command::new(env!("CARGO_BIN_EXE_sawl-serve"))
        .arg("--state-dir")
        .arg(state_dir)
        .args(["--listen", "127.0.0.1:0"])
        .args(extra)
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("sawl-serve spawns");
    let stdout = child.stdout.take().unwrap();
    let mut line = String::new();
    BufReader::new(stdout).read_line(&mut line).expect("daemon prints its endpoint");
    let addr = line
        .trim()
        .strip_prefix("sawl-serve: listening on tcp://")
        .unwrap_or_else(|| panic!("unexpected startup line: {line:?}"))
        .to_string();
    DaemonProc { child, addr }
}

fn call(addr: &str, req: &Request) -> Response {
    let stream = TcpStream::connect(addr).expect("daemon is listening");
    let mut reader = BufReader::new(stream);
    let json = serde_json::to_string(req).unwrap();
    reader.get_mut().write_all(json.as_bytes()).unwrap();
    reader.get_mut().write_all(b"\n").unwrap();
    reader.get_mut().flush().unwrap();
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    serde_json::from_str(line.trim()).expect("daemon answers valid JSON")
}

fn status_of(addr: &str) -> Vec<sawl_serve::TenantStatus> {
    match call(addr, &Request::Status) {
        Response::Status { tenants } => tenants,
        other => panic!("status failed: {other:?}"),
    }
}

#[test]
fn sigkill_then_restart_resumes_byte_identically() {
    let tenants = smoke_tenants();
    assert_eq!(tenants.len(), 2, "smoke fixture hosts two tenants");
    assert!(
        tenants.iter().any(|(_, exp)| exp.fault.is_some()),
        "one smoke tenant must be fault-armed"
    );
    let dir = unique_dir("sigkill");

    // Uninterrupted references, computed in-process.
    let references: Vec<_> =
        tenants.iter().map(|(name, exp)| (name.clone(), run_lifetime(exp).unwrap())).collect();

    // Daemon #1: checkpoint every 50k writes, then SIGKILL mid-run.
    {
        let mut daemon =
            spawn_daemon(&dir, &["--checkpoint-interval", "50000", "--slice-batches", "4"]);
        for (name, exp) in &tenants {
            let resp =
                call(&daemon.addr, &Request::Submit { tenant: name.clone(), spec: exp.clone() });
            assert!(matches!(resp, Response::Ok), "{resp:?}");
        }
        let start = Instant::now();
        loop {
            let status = status_of(&daemon.addr);
            for t in &status {
                assert_ne!(t.state, "failed", "tenant {} failed: {:?}", t.tenant, t.error);
            }
            // Kill once every tenant is past its first periodic checkpoint
            // but none has finished — that is the interesting window.
            let past_ckpt = status.len() == 2 && status.iter().all(|t| t.demand_writes >= 100_000);
            let any_done = status.iter().any(|t| t.state == "finished");
            if past_ckpt || any_done {
                assert!(!any_done, "a tenant finished before the kill; grow its cap");
                break;
            }
            assert!(
                start.elapsed() < Duration::from_secs(120),
                "tenants never reached the kill window: {status:?}"
            );
            std::thread::sleep(Duration::from_millis(10));
        }
        daemon.child.kill().expect("SIGKILL");
        daemon.child.wait().unwrap();
    }
    for (name, _) in &tenants {
        assert!(dir.join(format!("{name}.ckpt")).exists(), "{name} left no checkpoint");
        assert!(
            !dir.join(format!("{name}.result.json")).exists(),
            "{name} finished before the kill"
        );
    }

    // Daemon #2: recover, run to completion, compare byte-for-byte.
    {
        let mut daemon = spawn_daemon(&dir, &[]);
        let start = Instant::now();
        loop {
            let status = status_of(&daemon.addr);
            for t in &status {
                assert_ne!(t.state, "failed", "tenant {} failed: {:?}", t.tenant, t.error);
            }
            if status.iter().all(|t| t.state == "finished") {
                break;
            }
            assert!(
                start.elapsed() < Duration::from_secs(300),
                "resumed tenants did not finish: {status:?}"
            );
            std::thread::sleep(Duration::from_millis(20));
        }
        for (name, reference) in &references {
            let Response::Result { result, .. } =
                call(&daemon.addr, &Request::Result { tenant: name.clone() })
            else {
                panic!("result fetch failed for {name}");
            };
            assert_eq!(&*result, reference, "{name}: resumed run diverged");
            assert_eq!(
                serde_json::to_string(&*result).unwrap(),
                serde_json::to_string(reference).unwrap(),
                "{name}: wire encoding diverged"
            );
            let series = reference.telemetry.as_ref().expect("smoke specs sample telemetry");
            assert_eq!(
                std::fs::read_to_string(dir.join(format!("{name}.telemetry.jsonl"))).unwrap(),
                series.to_json_lines(),
                "{name}: streamed telemetry diverged"
            );
        }
        assert!(matches!(call(&daemon.addr, &Request::Shutdown), Response::ShuttingDown));
        let code = daemon.child.wait().unwrap();
        assert!(code.success(), "graceful shutdown must exit 0, got {code:?}");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn sigterm_checkpoints_all_tenants_and_exits_zero() {
    let tenants = smoke_tenants();
    let dir = unique_dir("sigterm");
    let mut daemon = spawn_daemon(&dir, &["--slice-batches", "4"]);
    for (name, exp) in &tenants {
        let resp = call(&daemon.addr, &Request::Submit { tenant: name.clone(), spec: exp.clone() });
        assert!(matches!(resp, Response::Ok), "{resp:?}");
    }
    // Wait for first progress so the runs are genuinely mid-flight.
    let start = Instant::now();
    loop {
        let status = status_of(&daemon.addr);
        if status.len() == 2 && status.iter().all(|t| t.demand_writes > 0) {
            break;
        }
        assert!(start.elapsed() < Duration::from_secs(60), "no progress: {status:?}");
        std::thread::sleep(Duration::from_millis(10));
    }
    let term =
        Command::new("kill").args(["-TERM", &daemon.child.id().to_string()]).status().unwrap();
    assert!(term.success());
    let code = daemon.child.wait().unwrap();
    assert!(code.success(), "SIGTERM must exit 0, got {code:?}");
    for (name, _) in &tenants {
        assert!(
            dir.join(format!("{name}.ckpt")).exists(),
            "{name}: SIGTERM quiesce must leave a checkpoint"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}
