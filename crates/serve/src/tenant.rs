//! Tenant state: one scheme × device × workload run hosted by the daemon.
//!
//! ## State-dir layout
//!
//! Each tenant owns a family of files under the daemon's state
//! directory, keyed by its (path-safe) name:
//!
//! | file | written | purpose |
//! |---|---|---|
//! | `<name>.spec.json`      | at submit            | rebuild the run after a restart |
//! | `<name>.ckpt`           | periodically, atomically | resume cursor ([`sawl_ckpt`] frame) |
//! | `<name>.progress.jsonl` | appended per slice   | streaming progress lines |
//! | `<name>.telemetry.jsonl`| once, at finish      | the sampled series, JSON-lines form |
//! | `<name>.result.json`    | once, at finish      | the final [`LifetimeResult`] |
//!
//! The spec and result files are written with the same tmp + fsync +
//! rename discipline as checkpoints, so a crash at any instant leaves
//! either the old file or the new one — never a torn half. Recovery
//! logic ([`crate::daemon::Daemon::new`]) keys off exactly these files:
//! a result file means the tenant is done, a checkpoint file means it
//! resumes mid-run, a bare spec file means it restarts from scratch —
//! all three land on the same bytes an uninterrupted run produces.

use std::fs::File;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::Mutex;

use sawl_simctl::{LifetimeResult, ResumableRun};
use serde::Serialize;

use crate::protocol::TenantStatus;

/// Phase mirror for lock-free status queries (`Tenant::phase`).
pub(crate) const PHASE_RUNNING: u8 = 0;
pub(crate) const PHASE_FINISHED: u8 = 1;
pub(crate) const PHASE_FAILED: u8 = 2;

/// Where a tenant's run currently lives.
pub(crate) enum TenantState {
    /// In progress; `last_ckpt` is the demand-write mark of the latest
    /// checkpoint, driving the periodic-save interval.
    Running { run: ResumableRun, last_ckpt: u64 },
    /// Ran to completion; the result is served from memory.
    Finished(Box<LifetimeResult>),
    /// Died with an error; the message is served from status queries.
    Failed(String),
}

/// One hosted tenant. The mutable run lives behind a mutex a worker
/// holds for the length of a slice; the atomics mirror its progress so
/// status queries never contend with the pump.
pub(crate) struct Tenant {
    pub(crate) name: String,
    pub(crate) state: Mutex<TenantState>,
    pub(crate) phase: AtomicU8,
    pub(crate) demand_writes: AtomicU64,
    pub(crate) cap: AtomicU64,
    pub(crate) batches: AtomicU64,
    pub(crate) error: Mutex<Option<String>>,
}

impl Tenant {
    /// Wrap a freshly built or resumed run.
    pub(crate) fn running(name: String, run: ResumableRun) -> Self {
        let t = Tenant {
            name,
            phase: AtomicU8::new(PHASE_RUNNING),
            demand_writes: AtomicU64::new(run.demand_writes()),
            cap: AtomicU64::new(run.cap()),
            batches: AtomicU64::new(run.batches()),
            error: Mutex::new(None),
            state: Mutex::new(TenantState::Running { run, last_ckpt: 0 }),
        };
        // A resumed run starts its periodic-save clock from its cursor,
        // not from zero, so resume does not immediately re-checkpoint.
        if let TenantState::Running { run, last_ckpt } = &mut *t.state.lock().unwrap() {
            *last_ckpt = run.demand_writes();
        }
        t
    }

    /// Wrap an already-finished result (restart after completion).
    pub(crate) fn finished(name: String, result: LifetimeResult) -> Self {
        Tenant {
            name,
            phase: AtomicU8::new(PHASE_FINISHED),
            demand_writes: AtomicU64::new(result.demand_writes),
            cap: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            error: Mutex::new(None),
            state: Mutex::new(TenantState::Finished(Box::new(result))),
        }
    }

    /// Wrap a tenant that could not be rebuilt or failed mid-run.
    pub(crate) fn failed(name: String, message: String) -> Self {
        Tenant {
            name,
            phase: AtomicU8::new(PHASE_FAILED),
            demand_writes: AtomicU64::new(0),
            cap: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            error: Mutex::new(Some(message.clone())),
            state: Mutex::new(TenantState::Failed(message)),
        }
    }

    /// Record a failure in both the state and the lock-free mirrors.
    pub(crate) fn mark_failed(&self, state: &mut TenantState, message: String) {
        *self.error.lock().unwrap() = Some(message.clone());
        *state = TenantState::Failed(message);
        self.phase.store(PHASE_FAILED, Ordering::Release);
    }

    /// Refresh the lock-free progress mirrors from the run.
    pub(crate) fn publish_progress(&self, run: &ResumableRun) {
        self.demand_writes.store(run.demand_writes(), Ordering::Release);
        self.cap.store(run.cap(), Ordering::Release);
        self.batches.store(run.batches(), Ordering::Release);
    }

    /// Snapshot for a status response — reads only the mirrors.
    pub(crate) fn status(&self) -> TenantStatus {
        let state = match self.phase.load(Ordering::Acquire) {
            PHASE_FINISHED => "finished",
            PHASE_FAILED => "failed",
            _ => "running",
        };
        TenantStatus {
            tenant: self.name.clone(),
            state: state.into(),
            demand_writes: self.demand_writes.load(Ordering::Acquire),
            cap: self.cap.load(Ordering::Acquire),
            batches: self.batches.load(Ordering::Acquire),
            error: self.error.lock().unwrap().clone(),
        }
    }
}

/// A tenant name is a filename fragment; keep it path-safe.
pub(crate) fn valid_name(name: &str) -> bool {
    !name.is_empty()
        && name.len() <= 128
        && name.chars().all(|c| c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-'))
        && !name.starts_with('.')
}

/// The four per-tenant file paths under `dir`.
pub(crate) struct TenantPaths {
    pub(crate) spec: PathBuf,
    pub(crate) ckpt: PathBuf,
    pub(crate) progress: PathBuf,
    pub(crate) telemetry: PathBuf,
    pub(crate) result: PathBuf,
}

/// Suffix of the spec file, the key recovery scans for.
pub(crate) const SPEC_SUFFIX: &str = ".spec.json";

pub(crate) fn paths(dir: &Path, name: &str) -> TenantPaths {
    TenantPaths {
        spec: dir.join(format!("{name}{SPEC_SUFFIX}")),
        ckpt: dir.join(format!("{name}.ckpt")),
        progress: dir.join(format!("{name}.progress.jsonl")),
        telemetry: dir.join(format!("{name}.telemetry.jsonl")),
        result: dir.join(format!("{name}.result.json")),
    }
}

/// Write `value` as pretty JSON atomically: tmp + fsync + rename, the
/// same crash discipline as [`sawl_ckpt::write_file`].
pub(crate) fn write_json_atomic<T: Serialize>(path: &Path, value: &T) -> std::io::Result<()> {
    let json = serde_json::to_string_pretty(value)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
    let mut bytes = json.into_bytes();
    bytes.push(b'\n');
    write_bytes_atomic(path, &bytes)
}

/// Write raw bytes atomically with the same tmp + fsync + rename
/// discipline as [`write_json_atomic`] — used for uploaded traces.
pub(crate) fn write_bytes_atomic(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let tmp = path.with_extension("tmp");
    {
        let mut f = File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    if let Some(parent) = path.parent() {
        // Make the rename itself durable.
        if let Ok(d) = File::open(parent) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

/// Where an uploaded trace named `name` lives under `dir`. The `.trc`
/// suffix keeps traces out of the tenant-recovery scan (which keys on
/// [`SPEC_SUFFIX`]).
pub(crate) fn trace_path(dir: &Path, name: &str) -> PathBuf {
    dir.join(format!("{name}.trc"))
}

/// Append one JSON line to the tenant's progress stream. Progress lines
/// are observability, not state — an append lost to a crash costs
/// nothing, so plain buffered append is enough.
pub(crate) fn append_progress_line<T: Serialize>(path: &Path, value: &T) -> std::io::Result<()> {
    let json = serde_json::to_string(value)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
    let mut f = std::fs::OpenOptions::new().create(true).append(true).open(path)?;
    f.write_all(json.as_bytes())?;
    f.write_all(b"\n")
}

/// One slice-boundary progress line. Owned fields: the vendored serde
/// derive does not handle lifetime parameters.
#[derive(Serialize)]
pub(crate) struct ProgressLine {
    pub(crate) line: String,
    pub(crate) tenant: String,
    pub(crate) demand_writes: u64,
    pub(crate) cap: u64,
    pub(crate) batches: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_must_be_path_safe() {
        for good in ["a", "tenant-1", "x.y_z", "A9"] {
            assert!(valid_name(good), "{good}");
        }
        for bad in ["", ".hidden", "a/b", "a b", "über", &"x".repeat(129)] {
            assert!(!valid_name(bad), "{bad}");
        }
    }

    #[test]
    fn atomic_json_write_replaces_and_survives_reread() {
        let dir = std::env::temp_dir().join("sawl-serve-tenant-unit");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("value.json");
        write_json_atomic(&path, &vec![1u64, 2, 3]).unwrap();
        write_json_atomic(&path, &vec![4u64]).unwrap();
        let back: Vec<u64> =
            serde_json::from_str(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(back, vec![4]);
        assert!(!path.with_extension("tmp").exists(), "tmp file left behind");
        std::fs::remove_dir_all(&dir).ok();
    }
}
