//! Line-JSON control protocol.
//!
//! One request per line, one response line back — serde's
//! externally-tagged encoding, so a unit command is a bare JSON string
//! (`"Status"`) and a payload command wraps its fields
//! (`{"Submit":{"tenant":"a","spec":{...}}}`). Connections are
//! short-lived: a client sends any number of request lines and the
//! daemon answers each in order; EOF (or a `Shutdown` exchange) ends the
//! conversation. Malformed lines never kill the connection — they come
//! back as [`Response::Error`].

use std::io::{BufRead, BufReader, Read, Write};

use sawl_simctl::{LifetimeExperiment, LifetimeResult};
use serde::{Deserialize, Serialize};

/// A control command, one JSON line on the wire.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Request {
    /// Liveness probe; answered with [`Response::Pong`].
    Ping,
    /// Start a new tenant running `spec` under the name `tenant`.
    Submit {
        /// Tenant name — path-safe (`[A-Za-z0-9._-]`), unique in the daemon.
        tenant: String,
        /// The lifetime experiment to run.
        spec: LifetimeExperiment,
    },
    /// Store a binary workload trace in the daemon's state directory so
    /// later `Submit` commands can replay it via a `TraceFile` workload.
    /// The bytes are validated against the trace format before anything
    /// touches disk; the answer ([`Response::TraceStored`]) carries the
    /// server-side path to put in the spec. Clients that already share a
    /// filesystem with the daemon can skip the upload and submit a
    /// `TraceFile` spec pointing at any server-visible path directly.
    UploadTrace {
        /// File stem, same charset rules as tenant names; stored as
        /// `<name>.trc`. Re-uploading a name replaces the trace.
        name: String,
        /// The trace bytes, standard padded base64 ([`crate::b64`]).
        data: String,
    },
    /// Progress of every tenant, alphabetically.
    Status,
    /// Progress of one tenant.
    Tenant {
        /// The tenant to report on.
        tenant: String,
    },
    /// The finished tenant's full [`LifetimeResult`].
    Result {
        /// The tenant whose result to fetch.
        tenant: String,
    },
    /// Force an immediate checkpoint of every running tenant.
    Checkpoint,
    /// Graceful shutdown: quiesce workers, checkpoint every running
    /// tenant, exit 0.
    Shutdown,
}

/// The daemon's answer, one JSON line on the wire.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Response {
    /// Command accepted.
    Ok,
    /// Liveness echo.
    Pong,
    /// Command failed; nothing changed.
    Error {
        /// What went wrong.
        message: String,
    },
    /// Per-tenant progress snapshots.
    Status {
        /// One entry per requested tenant, alphabetical.
        tenants: Vec<TenantStatus>,
    },
    /// A finished tenant's result.
    Result {
        /// The tenant the result belongs to.
        tenant: String,
        /// The complete lifetime report.
        result: Box<LifetimeResult>,
    },
    /// An uploaded trace was validated and stored.
    TraceStored {
        /// Server-side path of the stored trace, ready to paste into a
        /// `TraceFile` workload spec.
        path: String,
        /// Requests recorded in the trace.
        requests: u64,
        /// Address-space size (lines) the trace was recorded against —
        /// the submitted experiment's `data_lines` must match.
        space_lines: u64,
    },
    /// How many running tenants were checkpointed.
    Checkpointed {
        /// Tenants whose checkpoint files were rewritten.
        tenants: u64,
    },
    /// Shutdown acknowledged; the daemon is quiescing.
    ShuttingDown,
}

/// One tenant's progress snapshot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TenantStatus {
    /// Tenant name.
    pub tenant: String,
    /// `"running"`, `"finished"`, or `"failed"`.
    pub state: String,
    /// Demand writes served so far.
    pub demand_writes: u64,
    /// The run's demand-write cap.
    pub cap: u64,
    /// Completed stream batches (the checkpoint cursor).
    pub batches: u64,
    /// The failure message, for `"failed"` tenants.
    pub error: Option<String>,
}

impl Response {
    /// Shorthand for an error response.
    pub fn error(message: impl Into<String>) -> Self {
        Response::Error { message: message.into() }
    }
}

/// Serialize `value` as one newline-terminated JSON line and flush.
pub fn write_line<W: Write, T: Serialize>(w: &mut W, value: &T) -> std::io::Result<()> {
    let json = serde_json::to_string(value)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
    w.write_all(json.as_bytes())?;
    w.write_all(b"\n")?;
    w.flush()
}

/// Answer every request line on `stream` until EOF, via `handle`.
///
/// Returns `true` if the conversation ended with a `Shutdown` exchange
/// (the response is still written before the connection closes).
pub fn serve_connection<S, F>(stream: S, mut handle: F) -> std::io::Result<bool>
where
    S: Read + Write,
    F: FnMut(Request) -> Response,
{
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            return Ok(false);
        }
        if line.trim().is_empty() {
            continue;
        }
        let (response, shutdown) = match serde_json::from_str::<Request>(line.trim()) {
            Ok(req) => {
                let shutdown = matches!(req, Request::Shutdown);
                (handle(req), shutdown)
            }
            Err(e) => (Response::error(format!("malformed request: {e}")), false),
        };
        write_line(reader.get_mut(), &response)?;
        if shutdown {
            return Ok(true);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip_through_json_lines() {
        for req in [
            Request::Ping,
            Request::Status,
            Request::UploadTrace { name: "t0".into(), data: "Zm9vYmFy".into() },
            Request::Tenant { tenant: "a".into() },
            Request::Result { tenant: "a".into() },
            Request::Checkpoint,
            Request::Shutdown,
        ] {
            let json = serde_json::to_string(&req).unwrap();
            assert!(!json.contains('\n'), "line protocol forbids newlines: {json}");
            let back: Request = serde_json::from_str(&json).unwrap();
            assert_eq!(format!("{req:?}"), format!("{back:?}"));
        }
    }

    #[test]
    fn serve_connection_answers_each_line_and_flags_shutdown() {
        struct Duplex {
            input: std::io::Cursor<Vec<u8>>,
            output: Vec<u8>,
        }
        impl Read for Duplex {
            fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
                self.input.read(buf)
            }
        }
        impl Write for Duplex {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.output.write(buf)
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }

        let input = b"\"Ping\"\nnot json\n\"Shutdown\"\n\"Ping\"\n".to_vec();
        let mut out_probe = Vec::new();
        let shutdown = {
            let duplex = Duplex { input: std::io::Cursor::new(input), output: Vec::new() };
            let mut reqs = Vec::new();
            // Wrap so we can keep the output after serve_connection consumes
            // the stream: answer via the handler, then inspect lines.
            struct Tap<'a>(Duplex, &'a mut Vec<u8>);
            impl Read for Tap<'_> {
                fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
                    self.0.read(buf)
                }
            }
            impl Write for Tap<'_> {
                fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                    self.1.extend_from_slice(buf);
                    Ok(buf.len())
                }
                fn flush(&mut self) -> std::io::Result<()> {
                    Ok(())
                }
            }
            serve_connection(Tap(duplex, &mut out_probe), |req| {
                reqs.push(format!("{req:?}"));
                match req {
                    Request::Ping => Response::Pong,
                    Request::Shutdown => Response::ShuttingDown,
                    _ => Response::Ok,
                }
            })
            .unwrap()
        };
        assert!(shutdown, "third line was a Shutdown");
        let lines: Vec<&str> = std::str::from_utf8(&out_probe).unwrap().lines().collect();
        assert_eq!(lines.len(), 3, "ping + malformed + shutdown answered, then stop");
        assert_eq!(lines[0], "\"Pong\"");
        assert!(lines[1].contains("malformed request"), "{}", lines[1]);
        assert_eq!(lines[2], "\"ShuttingDown\"");
    }
}
