//! Minimal standard-alphabet base64, for shipping binary traces over
//! the line-JSON control protocol.
//!
//! The wire protocol is one JSON object per line, so binary payloads
//! must ride inside a JSON string. Standard padded base64 (RFC 4648,
//! `+/` alphabet, `=` padding) keeps uploads interoperable with
//! `base64(1)` and every client library, without pulling a dependency
//! into the daemon.

/// Encode `data` as standard padded base64.
pub fn encode(data: &[u8]) -> String {
    const ALPHABET: &[u8; 64] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";
    let mut out = String::with_capacity(data.len().div_ceil(3) * 4);
    for chunk in data.chunks(3) {
        let n = ((chunk[0] as u32) << 16)
            | ((chunk.get(1).copied().unwrap_or(0) as u32) << 8)
            | chunk.get(2).copied().unwrap_or(0) as u32;
        out.push(ALPHABET[(n >> 18) as usize & 63] as char);
        out.push(ALPHABET[(n >> 12) as usize & 63] as char);
        out.push(if chunk.len() > 1 { ALPHABET[(n >> 6) as usize & 63] as char } else { '=' });
        out.push(if chunk.len() > 2 { ALPHABET[n as usize & 63] as char } else { '=' });
    }
    out
}

/// Decode standard padded base64. Rejects non-alphabet bytes, lengths
/// that are not a multiple of four, and interior padding — uploads are
/// state, so anything ambiguous is an error, not a guess.
pub fn decode(s: &str) -> Result<Vec<u8>, String> {
    let bytes = s.as_bytes();
    if bytes.len() % 4 != 0 {
        return Err(format!("base64 length {} is not a multiple of 4", bytes.len()));
    }
    let chunks = bytes.len() / 4;
    let mut out = Vec::with_capacity(chunks * 3);
    for (i, chunk) in bytes.chunks(4).enumerate() {
        let last = i + 1 == chunks;
        let mut vals = [0u32; 4];
        let mut pad = 0usize;
        for (j, &c) in chunk.iter().enumerate() {
            if c == b'=' {
                if !last || j < 2 {
                    return Err("base64 padding may only end the final group".into());
                }
                pad += 1;
            } else {
                if pad > 0 {
                    return Err("base64 padding may only end the final group".into());
                }
                vals[j] = match c {
                    b'A'..=b'Z' => (c - b'A') as u32,
                    b'a'..=b'z' => (c - b'a' + 26) as u32,
                    b'0'..=b'9' => (c - b'0' + 52) as u32,
                    b'+' => 62,
                    b'/' => 63,
                    _ => return Err(format!("invalid base64 byte {:?}", c as char)),
                };
            }
        }
        let n = (vals[0] << 18) | (vals[1] << 12) | (vals[2] << 6) | vals[3];
        out.push((n >> 16) as u8);
        if pad < 2 {
            out.push((n >> 8) as u8);
        }
        if pad < 1 {
            out.push(n as u8);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_all_padding_lengths() {
        for len in 0..64usize {
            let data: Vec<u8> =
                (0..len).map(|i| (i as u8).wrapping_mul(37).wrapping_add(5)).collect();
            let enc = encode(&data);
            assert_eq!(enc.len() % 4, 0, "len {len}");
            assert_eq!(decode(&enc).unwrap(), data, "len {len}");
        }
    }

    #[test]
    fn matches_known_vectors() {
        // RFC 4648 test vectors.
        assert_eq!(encode(b""), "");
        assert_eq!(encode(b"f"), "Zg==");
        assert_eq!(encode(b"fo"), "Zm8=");
        assert_eq!(encode(b"foo"), "Zm9v");
        assert_eq!(encode(b"foob"), "Zm9vYg==");
        assert_eq!(encode(b"fooba"), "Zm9vYmE=");
        assert_eq!(encode(b"foobar"), "Zm9vYmFy");
        assert_eq!(decode("Zm9vYmFy").unwrap(), b"foobar");
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["Zg", "Zg=", "Z===", "=Zg=", "Zg==Zg==", "Zm9v!A==", "Zm 9v"] {
            assert!(decode(bad).is_err(), "{bad:?} should be rejected");
        }
    }
}
