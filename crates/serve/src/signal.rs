//! Dependency-free SIGTERM/SIGINT latch.
//!
//! The workspace vendors no `libc`, so the handler registers through the
//! C `signal` symbol directly — the handler itself only stores into an
//! [`AtomicBool`](std::sync::atomic::AtomicBool), which is async-signal
//! safe. Non-Unix builds compile the latch away: [`install`] is a no-op
//! and [`requested`] stays false.

#[cfg(unix)]
mod imp {
    use std::os::raw::c_int;
    use std::sync::atomic::{AtomicBool, Ordering};

    static STOP: AtomicBool = AtomicBool::new(false);

    const SIGINT: c_int = 2;
    const SIGTERM: c_int = 15;

    extern "C" fn latch(_signum: c_int) {
        STOP.store(true, Ordering::SeqCst);
    }

    extern "C" {
        fn signal(signum: c_int, handler: usize) -> usize;
    }

    pub fn install() {
        unsafe {
            signal(SIGINT, latch as extern "C" fn(c_int) as usize);
            signal(SIGTERM, latch as extern "C" fn(c_int) as usize);
        }
    }

    pub fn requested() -> bool {
        STOP.load(Ordering::SeqCst)
    }
}

#[cfg(not(unix))]
mod imp {
    pub fn install() {}

    pub fn requested() -> bool {
        false
    }
}

/// Route SIGINT and SIGTERM into the latch. Idempotent.
pub fn install() {
    imp::install()
}

/// Whether a shutdown signal has arrived since [`install`].
pub fn requested() -> bool {
    imp::requested()
}
