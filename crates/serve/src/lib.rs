//! # sawl-serve — crash-safe multi-tenant simulation daemon
//!
//! A long-running host for many concurrent lifetime simulations
//! ("tenants": one scheme × device × workload each), controlled over a
//! line-JSON socket and built for being killed:
//!
//! * [`protocol`] — the wire vocabulary: [`Request`]/[`Response`] as
//!   one-JSON-object-per-line over TCP or a Unix socket, plus the
//!   connection loop.
//! * [`daemon`] — the [`Daemon`]: tenant registry, MPMC worker pool
//!   slicing runs fairly across cores, periodic atomic checkpoints,
//!   graceful shutdown, and restart recovery from the state directory.
//! * [`signal`] — a dependency-free SIGTERM/SIGINT latch the binary
//!   uses to turn signals into graceful shutdown.
//! * [`b64`] — dependency-free standard base64, so clients can ship
//!   binary workload traces ([`Request::UploadTrace`]) down the
//!   line-JSON socket and replay them via `TraceFile` workloads.
//!
//! The crash-safety contract is inherited from
//! [`sawl_simctl::ResumableRun`]: every checkpoint is a versioned,
//! checksummed [`sawl_ckpt`] frame written tmp + fsync + rename, and a
//! tenant resumed from its last checkpoint continues **byte-identically**
//! — same [`LifetimeResult`](sawl_simctl::LifetimeResult), same
//! telemetry series — as if the daemon had never died. The integration
//! tests SIGKILL a live daemon mid-run and pin exactly that.

pub mod b64;
pub mod daemon;
pub mod protocol;
pub mod signal;
mod tenant;

pub use daemon::{Daemon, Endpoint, ServeConfig};
pub use protocol::{serve_connection, write_line, Request, Response, TenantStatus};
