//! The daemon: tenant registry, worker pool, control listeners,
//! graceful shutdown, and crash recovery.
//!
//! ## Scheduling
//!
//! Tenants shard across a fixed worker pool through an unbounded MPMC
//! [`crossbeam::channel`]: submit (and recovery) enqueue the tenant,
//! a worker dequeues it, runs one *slice* ([`ServeConfig::slice_batches`]
//! stream batches) under the tenant's state lock, then re-enqueues it if
//! unfinished. Slices keep long runs from starving short ones while the
//! per-slice locking keeps each tenant's run strictly sequential — the
//! byte-identity contract of [`ResumableRun`] needs nothing more.
//!
//! ## Crash safety
//!
//! Workers checkpoint a tenant whenever it has served
//! [`ServeConfig::checkpoint_interval`] demand writes since its last
//! save, and once more when it finishes. Graceful shutdown (socket
//! `Shutdown` command or the binary's SIGTERM latch) stops the accept
//! loops, drains the workers at their next batch boundary, then sweeps
//! every still-running tenant through one final checkpoint. A SIGKILL
//! loses at most the work since the last checkpoint; restart resumes
//! from the state directory and lands on the same bytes an
//! uninterrupted run produces.

use std::collections::BTreeMap;
use std::io;
use std::net::TcpListener;
#[cfg(unix)]
use std::os::unix::net::UnixListener;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use crossbeam::channel;
use sawl_simctl::{LifetimeExperiment, LifetimeResult, ResumableRun, DEFAULT_CHECKPOINT_INTERVAL};
use sawl_trace::AddressStream as _;

use crate::protocol::{serve_connection, Request, Response, TenantStatus};
use crate::tenant::{
    append_progress_line, paths, trace_path, valid_name, write_bytes_atomic, write_json_atomic,
    ProgressLine, Tenant, TenantState, PHASE_FINISHED, SPEC_SUFFIX,
};

/// Daemon tuning knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Where per-tenant spec/checkpoint/result files live.
    pub state_dir: PathBuf,
    /// Worker threads; `0` sizes to the machine.
    pub workers: usize,
    /// Demand writes between periodic checkpoints of each tenant.
    pub checkpoint_interval: u64,
    /// Stream batches per scheduling slice.
    pub slice_batches: u64,
}

impl ServeConfig {
    /// Defaults for `state_dir`: machine-sized workers, the library
    /// checkpoint interval, 64-batch slices.
    pub fn new(state_dir: impl Into<PathBuf>) -> Self {
        ServeConfig {
            state_dir: state_dir.into(),
            workers: 0,
            checkpoint_interval: DEFAULT_CHECKPOINT_INTERVAL,
            slice_batches: 64,
        }
    }

    fn effective_workers(&self) -> usize {
        if self.workers > 0 {
            return self.workers;
        }
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4)
    }
}

/// A control-socket endpoint the daemon accepts connections on.
pub enum Endpoint {
    /// A bound TCP listener.
    Tcp(TcpListener),
    /// A bound Unix-domain listener.
    #[cfg(unix)]
    Unix(UnixListener),
}

/// The multi-tenant simulation daemon. See the [module docs](self).
pub struct Daemon {
    cfg: ServeConfig,
    tenants: Mutex<BTreeMap<String, Arc<Tenant>>>,
    queue_tx: channel::Sender<Arc<Tenant>>,
    queue_rx: channel::Receiver<Arc<Tenant>>,
    shutdown: AtomicBool,
    /// Checkpoint files written over the daemon's lifetime (observability).
    checkpoints_written: AtomicU64,
}

impl Daemon {
    /// Create the state directory if needed, recover every tenant whose
    /// spec file is present (resuming from checkpoints where they
    /// exist), and return the daemon ready to [`serve`](Self::serve).
    ///
    /// Recovery is forgiving per tenant: a spec that no longer parses or
    /// a checkpoint that fails validation marks that tenant `failed` and
    /// the daemon keeps going — one rotten file must not take down the
    /// other tenants.
    pub fn new(cfg: ServeConfig) -> io::Result<Arc<Self>> {
        std::fs::create_dir_all(&cfg.state_dir)?;
        let (queue_tx, queue_rx) = channel::unbounded();
        let daemon = Arc::new(Daemon {
            cfg,
            tenants: Mutex::new(BTreeMap::new()),
            queue_tx,
            queue_rx,
            shutdown: AtomicBool::new(false),
            checkpoints_written: AtomicU64::new(0),
        });
        daemon.recover()?;
        Ok(daemon)
    }

    /// The daemon's configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.cfg
    }

    /// Checkpoint files written so far.
    pub fn checkpoints_written(&self) -> u64 {
        self.checkpoints_written.load(Ordering::Relaxed)
    }

    /// Ask the daemon to quiesce; `serve` returns once workers drain.
    pub fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::Release);
    }

    /// Whether shutdown has been requested.
    pub fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::Acquire)
    }

    fn recover(self: &Arc<Self>) -> io::Result<()> {
        let mut names = Vec::new();
        for entry in std::fs::read_dir(&self.cfg.state_dir)? {
            let entry = entry?;
            let file = entry.file_name();
            let Some(file) = file.to_str() else { continue };
            if let Some(name) = file.strip_suffix(SPEC_SUFFIX) {
                names.push(name.to_string());
            }
        }
        names.sort();
        for name in names {
            let tenant = self.recover_tenant(&name);
            let running = !matches!(
                &*tenant.state.lock().unwrap(),
                TenantState::Finished(_) | TenantState::Failed(_)
            );
            let tenant = Arc::new(tenant);
            self.tenants.lock().unwrap().insert(name, Arc::clone(&tenant));
            if running {
                let _ = self.queue_tx.send(tenant);
            }
        }
        Ok(())
    }

    fn recover_tenant(&self, name: &str) -> Tenant {
        let p = paths(&self.cfg.state_dir, name);
        let spec = match std::fs::read_to_string(&p.spec)
            .map_err(|e| e.to_string())
            .and_then(|s| serde_json::from_str::<LifetimeExperiment>(&s).map_err(|e| e.to_string()))
        {
            Ok(spec) => spec,
            Err(e) => {
                return Tenant::failed(
                    name.into(),
                    format!("cannot reload spec {}: {e}", p.spec.display()),
                )
            }
        };
        if p.result.exists() {
            return match std::fs::read_to_string(&p.result)
                .map_err(|e| e.to_string())
                .and_then(|s| serde_json::from_str::<LifetimeResult>(&s).map_err(|e| e.to_string()))
            {
                Ok(result) => Tenant::finished(name.into(), result),
                Err(e) => Tenant::failed(
                    name.into(),
                    format!("cannot reload result {}: {e}", p.result.display()),
                ),
            };
        }
        let run = if p.ckpt.exists() {
            ResumableRun::resume(&spec, &p.ckpt)
        } else {
            ResumableRun::new(&spec)
        };
        match run {
            Ok(run) => Tenant::running(name.into(), run),
            Err(e) => Tenant::failed(name.into(), e.to_string()),
        }
    }

    /// Handle one protocol request. Public so tests (and embedders) can
    /// drive the daemon without a socket.
    pub fn handle(&self, req: Request) -> Response {
        match req {
            Request::Ping => Response::Pong,
            Request::Submit { tenant, spec } => self.submit(tenant, spec),
            Request::UploadTrace { name, data } => self.upload_trace(&name, &data),
            Request::Status => Response::Status { tenants: self.status() },
            Request::Tenant { tenant } => match self.tenants.lock().unwrap().get(&tenant) {
                Some(t) => Response::Status { tenants: vec![t.status()] },
                None => Response::error(format!("no tenant {tenant:?}")),
            },
            Request::Result { tenant } => self.result(&tenant),
            Request::Checkpoint => match self.checkpoint_running() {
                Ok(n) => Response::Checkpointed { tenants: n },
                Err(e) => Response::error(e),
            },
            Request::Shutdown => {
                self.request_shutdown();
                Response::ShuttingDown
            }
        }
    }

    /// Progress of every tenant, alphabetical (BTreeMap order).
    pub fn status(&self) -> Vec<TenantStatus> {
        self.tenants.lock().unwrap().values().map(|t| t.status()).collect()
    }

    fn submit(&self, name: String, spec: LifetimeExperiment) -> Response {
        if self.shutting_down() {
            return Response::error("daemon is shutting down");
        }
        if !valid_name(&name) {
            return Response::error(format!(
                "invalid tenant name {name:?}: use 1-128 chars of [A-Za-z0-9._-], \
                 not starting with a dot"
            ));
        }
        {
            let tenants = self.tenants.lock().unwrap();
            if tenants.contains_key(&name) {
                return Response::error(format!("tenant {name:?} already exists"));
            }
        }
        let run = match ResumableRun::new(&spec) {
            Ok(run) => run,
            Err(e) => return Response::error(format!("cannot start {name:?}: {e}")),
        };
        let tenant = Arc::new(Tenant::running(name.clone(), run));
        {
            let mut tenants = self.tenants.lock().unwrap();
            // Re-check under the lock: a racing submit may have won.
            if tenants.contains_key(&name) {
                return Response::error(format!("tenant {name:?} already exists"));
            }
            tenants.insert(name.clone(), Arc::clone(&tenant));
        }
        // Persist the spec only after winning the name, so a lost race
        // cannot clobber the winner's file.
        let p = paths(&self.cfg.state_dir, &name);
        if let Err(e) = write_json_atomic(&p.spec, &spec) {
            self.tenants.lock().unwrap().remove(&name);
            return Response::error(format!("cannot persist spec for {name:?}: {e}"));
        }
        let _ = self.queue_tx.send(tenant);
        Response::Ok
    }

    /// Validate and store an uploaded trace under the state directory.
    /// The bytes must parse as a complete trace (magic, header, whole
    /// records) before anything is written — a daemon never hosts a
    /// trace file it could not itself replay.
    fn upload_trace(&self, name: &str, data: &str) -> Response {
        if self.shutting_down() {
            return Response::error("daemon is shutting down");
        }
        if !valid_name(name) {
            return Response::error(format!(
                "invalid trace name {name:?}: use 1-128 chars of [A-Za-z0-9._-], \
                 not starting with a dot"
            ));
        }
        let bytes = match crate::b64::decode(data) {
            Ok(b) => b,
            Err(e) => return Response::error(format!("trace upload {name:?}: {e}")),
        };
        let reader = match sawl_trace::TraceReader::from_reader(&bytes[..]) {
            Ok(r) => r,
            Err(e) => return Response::error(format!("trace upload {name:?}: {e}")),
        };
        let path = trace_path(&self.cfg.state_dir, name);
        if let Err(e) = write_bytes_atomic(&path, &bytes) {
            return Response::error(format!("cannot store trace {name:?}: {e}"));
        }
        Response::TraceStored {
            path: path.display().to_string(),
            requests: reader.len(),
            space_lines: reader.space_lines(),
        }
    }

    fn result(&self, name: &str) -> Response {
        let tenant = match self.tenants.lock().unwrap().get(name) {
            Some(t) => Arc::clone(t),
            None => return Response::error(format!("no tenant {name:?}")),
        };
        let state = tenant.state.lock().unwrap();
        match &*state {
            TenantState::Finished(result) => {
                Response::Result { tenant: name.into(), result: result.clone() }
            }
            TenantState::Running { run, .. } => Response::error(format!(
                "tenant {name:?} is still running ({} / {} demand writes)",
                run.demand_writes(),
                run.cap()
            )),
            TenantState::Failed(msg) => Response::error(format!("tenant {name:?} failed: {msg}")),
        }
    }

    /// Checkpoint every running tenant now. Returns how many were saved.
    fn checkpoint_running(&self) -> Result<u64, String> {
        let tenants: Vec<Arc<Tenant>> = self.tenants.lock().unwrap().values().cloned().collect();
        let mut saved = 0;
        for tenant in tenants {
            let mut state = tenant.state.lock().unwrap();
            if let TenantState::Running { run, last_ckpt } = &mut *state {
                let p = paths(&self.cfg.state_dir, &tenant.name);
                run.save(&p.ckpt).map_err(|e| e.to_string())?;
                *last_ckpt = run.demand_writes();
                self.checkpoints_written.fetch_add(1, Ordering::Relaxed);
                saved += 1;
            }
        }
        Ok(saved)
    }

    /// Run one scheduling slice of `tenant`. Returns whether the tenant
    /// should be re-enqueued (still running).
    fn run_slice(&self, tenant: &Tenant) -> bool {
        let mut state = tenant.state.lock().unwrap();
        let TenantState::Running { run, last_ckpt } = &mut *state else {
            return false;
        };
        let p = paths(&self.cfg.state_dir, &tenant.name);
        let mut failure: Option<String> = None;
        let mut finished = false;
        for _ in 0..self.cfg.slice_batches.max(1) {
            match run.step() {
                Ok(true) => {
                    if run.demand_writes().saturating_sub(*last_ckpt)
                        >= self.cfg.checkpoint_interval
                    {
                        match run.save(&p.ckpt) {
                            Ok(()) => {
                                *last_ckpt = run.demand_writes();
                                self.checkpoints_written.fetch_add(1, Ordering::Relaxed);
                            }
                            Err(e) => {
                                failure = Some(e.to_string());
                                break;
                            }
                        }
                    }
                    if self.shutting_down() {
                        break;
                    }
                }
                Ok(false) => {
                    finished = true;
                    break;
                }
                Err(e) => {
                    failure = Some(e.to_string());
                    break;
                }
            }
        }
        tenant.publish_progress(run);
        let _ = append_progress_line(
            &p.progress,
            &ProgressLine {
                line: "progress".into(),
                tenant: tenant.name.clone(),
                demand_writes: run.demand_writes(),
                cap: run.cap(),
                batches: run.batches(),
            },
        );
        if let Some(msg) = failure {
            tenant.mark_failed(&mut state, msg);
            return false;
        }
        if finished {
            // Final checkpoint first: a crash between here and the result
            // write resumes into an already-finished run and reproduces
            // the result on the next restart.
            if let Err(e) = run.save(&p.ckpt) {
                tenant.mark_failed(&mut state, e.to_string());
                return false;
            }
            self.checkpoints_written.fetch_add(1, Ordering::Relaxed);
            let prev = std::mem::replace(&mut *state, TenantState::Failed("finishing".into()));
            let TenantState::Running { run, .. } = prev else { unreachable!() };
            let result = run.into_result();
            if let Some(series) = &result.telemetry {
                let _ = std::fs::write(&p.telemetry, series.to_json_lines());
            }
            if let Err(e) = write_json_atomic(&p.result, &result) {
                tenant.mark_failed(&mut state, format!("cannot persist result: {e}"));
                return false;
            }
            tenant.demand_writes.store(result.demand_writes, Ordering::Release);
            *state = TenantState::Finished(Box::new(result));
            tenant.phase.store(PHASE_FINISHED, Ordering::Release);
            return false;
        }
        true
    }

    fn worker(&self) {
        loop {
            match self.queue_rx.recv_timeout(Duration::from_millis(25)) {
                Ok(tenant) => {
                    let requeue = self.run_slice(&tenant);
                    if self.shutting_down() {
                        // Quiesce: the final checkpoint sweep in `serve`
                        // captures whatever this slice did not save.
                        break;
                    }
                    if requeue {
                        let _ = self.queue_tx.send(tenant);
                    }
                }
                Err(channel::RecvTimeoutError::Timeout) => {
                    if self.shutting_down() {
                        break;
                    }
                }
                Err(channel::RecvTimeoutError::Disconnected) => break,
            }
        }
    }

    fn accept_loop(self: &Arc<Self>, endpoint: Endpoint, stop: impl Fn() -> bool) {
        match &endpoint {
            Endpoint::Tcp(l) => {
                let _ = l.set_nonblocking(true);
            }
            #[cfg(unix)]
            Endpoint::Unix(l) => {
                let _ = l.set_nonblocking(true);
            }
        }
        let mut conns: Vec<std::thread::JoinHandle<()>> = Vec::new();
        loop {
            if self.shutting_down() {
                break;
            }
            if stop() {
                self.request_shutdown();
                break;
            }
            let accepted: Option<Box<dyn FnOnce(&Daemon) + Send>> = match &endpoint {
                Endpoint::Tcp(l) => match l.accept() {
                    Ok((stream, _)) => {
                        let _ = stream.set_nonblocking(false);
                        Some(Box::new(move |d: &Daemon| {
                            let _ = serve_connection(stream, |req| d.handle(req));
                        }))
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => None,
                    Err(_) => None,
                },
                #[cfg(unix)]
                Endpoint::Unix(l) => match l.accept() {
                    Ok((stream, _)) => {
                        let _ = stream.set_nonblocking(false);
                        Some(Box::new(move |d: &Daemon| {
                            let _ = serve_connection(stream, |req| d.handle(req));
                        }))
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => None,
                    Err(_) => None,
                },
            };
            match accepted {
                Some(conn) => {
                    let daemon = Arc::clone(self);
                    conns.push(std::thread::spawn(move || conn(&daemon)));
                    conns.retain(|h| !h.is_finished());
                }
                None => std::thread::sleep(Duration::from_millis(20)),
            }
        }
        for h in conns {
            let _ = h.join();
        }
    }

    /// Run the daemon: spawn the worker pool, accept control connections
    /// on every endpoint, and block until shutdown is requested (by a
    /// `Shutdown` command or by `stop` returning true — the binary's
    /// signal latch). Before returning, every still-running tenant is
    /// checkpointed once more, so a graceful exit never loses progress.
    pub fn serve(
        self: &Arc<Self>,
        endpoints: Vec<Endpoint>,
        stop: impl Fn() -> bool + Send + Sync + Clone,
    ) -> io::Result<()> {
        let workers = self.cfg.effective_workers();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                let daemon = Arc::clone(self);
                scope.spawn(move || daemon.worker());
            }
            for endpoint in endpoints {
                let daemon = Arc::clone(self);
                let stop = stop.clone();
                scope.spawn(move || daemon.accept_loop(endpoint, stop));
            }
            // If the daemon serves no endpoints (embedded use), still honour
            // the external stop signal.
            while !self.shutting_down() {
                if stop() {
                    self.request_shutdown();
                    break;
                }
                std::thread::sleep(Duration::from_millis(20));
            }
        });
        self.checkpoint_running().map_err(io::Error::other)?;
        Ok(())
    }
}
