//! sawl-serve — the multi-tenant simulation daemon, as a binary.
//!
//! ```text
//! sawl-serve --state-dir DIR [--listen ADDR] [--unix PATH]
//!            [--workers N] [--checkpoint-interval WRITES] [--slice-batches N]
//! ```
//!
//! Binds the control socket(s), recovers every tenant found in the
//! state directory (resuming from checkpoints where present), prints
//! one `listening on ...` line per endpoint to stdout, and serves until
//! a `Shutdown` command or SIGTERM/SIGINT arrives — then quiesces,
//! checkpoints every running tenant, and exits 0. `--listen 127.0.0.1:0`
//! picks a free port; scripts parse it from the `listening on` line.
//!
//! Exit codes: 0 graceful shutdown, 1 runtime error (bind/IO), 2 usage.

use std::net::TcpListener;
use std::path::PathBuf;
use std::process::ExitCode;

use sawl_serve::{signal, Daemon, Endpoint, ServeConfig};

const USAGE: &str = "usage:\n  sawl-serve --state-dir DIR [--listen ADDR] [--unix PATH] \
                     [--workers N] [--checkpoint-interval WRITES] [--slice-batches N]";

/// Parsed command line.
#[derive(Debug, PartialEq)]
struct Args {
    state_dir: PathBuf,
    listen: Option<String>,
    unix: Option<PathBuf>,
    workers: usize,
    checkpoint_interval: Option<u64>,
    slice_batches: Option<u64>,
}

fn parse_args(args: &[String]) -> Result<Args, String> {
    let mut state_dir = None;
    let mut listen = None;
    let mut unix = None;
    let mut workers = 0usize;
    let mut checkpoint_interval = None;
    let mut slice_batches = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--state-dir" => match it.next() {
                Some(dir) => state_dir = Some(PathBuf::from(dir)),
                None => return Err("--state-dir needs a directory".into()),
            },
            "--listen" => match it.next() {
                Some(addr) => listen = Some(addr.clone()),
                None => return Err("--listen needs an address like 127.0.0.1:7463".into()),
            },
            "--unix" => match it.next() {
                Some(path) => unix = Some(PathBuf::from(path)),
                None => return Err("--unix needs a socket path".into()),
            },
            "--workers" => match it.next().map(|v| v.parse::<usize>()) {
                Some(Ok(n)) if n >= 1 => workers = n,
                _ => return Err("--workers needs a thread count >= 1".into()),
            },
            "--checkpoint-interval" => match it.next().map(|v| v.parse::<u64>()) {
                Some(Ok(n)) if n >= 1 => checkpoint_interval = Some(n),
                _ => return Err("--checkpoint-interval needs a write count >= 1".into()),
            },
            "--slice-batches" => match it.next().map(|v| v.parse::<u64>()) {
                Some(Ok(n)) if n >= 1 => slice_batches = Some(n),
                _ => return Err("--slice-batches needs a batch count >= 1".into()),
            },
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    let state_dir = state_dir.ok_or("--state-dir is required")?;
    Ok(Args { state_dir, listen, unix, workers, checkpoint_interval, slice_batches })
}

fn run(args: Args) -> Result<(), String> {
    let mut cfg = ServeConfig::new(&args.state_dir);
    cfg.workers = args.workers;
    if let Some(interval) = args.checkpoint_interval {
        cfg.checkpoint_interval = interval;
    }
    if let Some(batches) = args.slice_batches {
        cfg.slice_batches = batches;
    }

    let mut endpoints = Vec::new();
    // Default to loopback TCP when no endpoint was requested at all.
    let listen = match (&args.listen, &args.unix) {
        (None, None) => Some("127.0.0.1:7463".to_string()),
        (listen, _) => listen.clone(),
    };
    if let Some(addr) = listen {
        let l = TcpListener::bind(&addr).map_err(|e| format!("cannot bind {addr}: {e}"))?;
        let local = l.local_addr().map_err(|e| e.to_string())?;
        println!("sawl-serve: listening on tcp://{local}");
        endpoints.push(Endpoint::Tcp(l));
    }
    #[cfg(unix)]
    if let Some(path) = &args.unix {
        // A previous unclean death leaves the socket file behind; it is
        // control-plane only, so replacing it is always right.
        let _ = std::fs::remove_file(path);
        let l = std::os::unix::net::UnixListener::bind(path)
            .map_err(|e| format!("cannot bind {}: {e}", path.display()))?;
        println!("sawl-serve: listening on unix://{}", path.display());
        endpoints.push(Endpoint::Unix(l));
    }
    #[cfg(not(unix))]
    if args.unix.is_some() {
        return Err("--unix is only available on Unix platforms".into());
    }
    use std::io::Write as _;
    let _ = std::io::stdout().flush();

    signal::install();
    let daemon = Daemon::new(cfg).map_err(|e| format!("cannot start daemon: {e}"))?;
    let running = daemon.status().iter().filter(|t| t.state == "running").count();
    if running > 0 {
        eprintln!("sawl-serve: recovered {running} running tenant(s) from state dir");
    }
    daemon.serve(endpoints, signal::requested).map_err(|e| e.to_string())?;
    eprintln!(
        "sawl-serve: shut down cleanly ({} checkpoint(s) written)",
        daemon.checkpoints_written()
    );
    #[cfg(unix)]
    if let Some(path) = &args.unix {
        let _ = std::fs::remove_file(path);
    }
    Ok(())
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(args) => args,
        Err(e) => {
            eprintln!("sawl-serve: {e}\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    match run(args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("sawl-serve: {e}");
            ExitCode::from(1)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Args, String> {
        parse_args(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    }

    #[test]
    fn state_dir_is_required_and_flags_parse() {
        assert!(parse(&[]).unwrap_err().contains("--state-dir"));
        let args = parse(&[
            "--state-dir",
            "/tmp/x",
            "--listen",
            "127.0.0.1:0",
            "--workers",
            "3",
            "--checkpoint-interval",
            "5000",
            "--slice-batches",
            "8",
        ])
        .unwrap();
        assert_eq!(args.state_dir, PathBuf::from("/tmp/x"));
        assert_eq!(args.listen.as_deref(), Some("127.0.0.1:0"));
        assert_eq!(args.workers, 3);
        assert_eq!(args.checkpoint_interval, Some(5000));
        assert_eq!(args.slice_batches, Some(8));
    }

    #[test]
    fn bad_values_are_usage_errors() {
        assert!(parse(&["--state-dir", "/tmp/x", "--workers", "0"]).is_err());
        assert!(parse(&["--state-dir", "/tmp/x", "--checkpoint-interval", "0"]).is_err());
        assert!(parse(&["--state-dir", "/tmp/x", "--frobnicate"]).is_err());
    }
}
