//! Adaptive granularity — watch SAWL resize its regions live.
//!
//! Runs a workload that alternates between a tight hot set (high CMT hit
//! rate) and scattered uniform traffic (poor hit rate) and prints the
//! engine's sampled hit rate and region size as they evolve: merges kick
//! in when the scattered phase drags the hit rate below the 90% threshold,
//! splits when the tight phase pins it above 95%.
//!
//! ```text
//! cargo run --release --example adaptive_granularity
//! ```

use rand::rngs::SmallRng;
use rand::SeedableRng;
use sawl::nvm::{NvmConfig, NvmDevice};
use sawl::sawl::{Sawl, SawlConfig};
use sawl::simctl::pump;
use sawl::trace::{AddressStream, Phased, Uniform, Zipf};

/// A tight zipf-hot stream over a small window (stands in for a cache-
/// friendly execution phase).
struct HotPhase {
    zipf: Zipf,
    rng: SmallRng,
    space: u64,
}

impl AddressStream for HotPhase {
    fn next_req(&mut self) -> sawl::trace::MemReq {
        let la = self.zipf.sample(&mut self.rng) * 4;
        sawl::trace::MemReq { la, write: true }
    }

    fn space_lines(&self) -> u64 {
        self.space
    }

    fn name(&self) -> &str {
        "hot"
    }
}

fn main() {
    let space: u64 = 1 << 18;
    let cfg = SawlConfig {
        data_lines: space,
        cmt_entries: 256,
        max_granularity: 512,
        sample_interval: 20_000,
        observation_window: 1 << 18,
        settling_window: 1 << 17,
        swap_period: 1 << 20, // keep exchanges quiet so adaptation stands out
        ..SawlConfig::default()
    };
    let mut sawl = Sawl::new(cfg);
    let mut device = NvmDevice::new(
        NvmConfig::builder()
            .lines(sawl.required_physical_lines())
            .endurance(u32::MAX)
            .build()
            .unwrap(),
    );

    let hot =
        Box::new(HotPhase { zipf: Zipf::new(512, 1.2), rng: SmallRng::seed_from_u64(7), space });
    let scattered = Box::new(Uniform::new(space, 1.0, 11));
    let mut workload = Phased::new(vec![(3_000_000, hot), (3_000_000, scattered)]);

    pump(&mut sawl, &mut device, &mut workload, 18_000_000);

    println!("requests  windowed-hit%  region-size(lines)");
    for s in sawl.history().samples().iter().step_by(15) {
        let bar = "#".repeat((s.cached_region_size.log2().max(0.0) * 4.0) as usize);
        println!(
            "{:>9}  {:>12.1}  {:>8.1} {bar}",
            s.requests,
            s.windowed_hit_rate * 100.0,
            s.cached_region_size,
        );
    }
    let stats = sawl.stats();
    println!(
        "\nmerges: {}  splits: {}  final region count: {}",
        stats.merges, stats.splits, stats.region_count
    );
    assert!(stats.merges > 0, "expected the scattered phases to force merges");
}
