//! Trace pipeline — record once, replay everywhere.
//!
//! Records a SPEC-like workload into the suite's binary trace format, then
//! replays the *identical* request sequence through two different wear
//! levelers and through the timing model, the way the paper's evaluation
//! holds the workload fixed across schemes.
//!
//! ```text
//! cargo run --release --example trace_pipeline
//! ```

use bytes::Bytes;
use sawl::nvm::{NvmConfig, NvmDevice};
use sawl::simctl::pump_observed;
use sawl::tiered::{Nwl, NwlConfig};
use sawl::timing::{ipc_degradation, CpuModel, IpcModel, MemEvent, Translation};
use sawl::trace::{SpecBenchmark, TraceReader, TraceWriter};

fn device_for(lines: u64) -> NvmDevice {
    NvmDevice::new(NvmConfig::builder().lines(lines).endurance(u32::MAX).build().unwrap())
}

fn main() {
    let space: u64 = 1 << 18;
    let n_requests: u64 = 2_000_000;

    // 1. Record gcc-like traffic to an in-memory trace (a file works the
    //    same way: any io::Write/io::Read).
    let mut generator = SpecBenchmark::Gcc.stream(space, 99);
    let mut writer =
        TraceWriter::new(std::io::Cursor::new(Vec::new()), space).expect("trace header");
    writer.record(&mut generator, n_requests).expect("record");
    let (out, count) = writer.finish().expect("finish");
    let buf = out.into_inner();
    println!("recorded {count} requests ({} MB)", buf.len() >> 20);

    // 2. Replay through NWL-4 and NWL-64 — bit-identical traffic.
    let mut summaries = Vec::new();
    for granularity in [4u64, 64] {
        let mut reader = TraceReader::from_bytes(Bytes::from(buf.clone())).expect("parse");
        let mut nwl = Nwl::new(NwlConfig {
            data_lines: space,
            granularity,
            cmt_entries: 2048,
            ..NwlConfig::default()
        });
        let mut dev = device_for(nwl.required_physical_lines());
        let cpu = CpuModel::for_benchmark(SpecBenchmark::Gcc);
        let mut model = IpcModel::new(cpu);
        let mut base = IpcModel::new(cpu);
        // The observer diffs the miss counter around each request, so it
        // carries the previous count across observations.
        let mut misses_before = nwl.mapping_stats().misses;
        pump_observed(&mut nwl, &mut dev, &mut reader, count, |req, pa, w, _| {
            let missed = w.mapping_stats().misses > misses_before;
            misses_before = w.mapping_stats().misses;
            let translation = if missed { Translation::Miss } else { Translation::Hit };
            let bank = (pa % 32) as u32;
            let ev = if req.write { MemEvent::write(bank) } else { MemEvent::read(bank) };
            model.push(ev.with_translation(translation));
            let base_bank = (req.la % 32) as u32;
            base.push(if req.write {
                MemEvent::write(base_bank)
            } else {
                MemEvent::read(base_bank)
            });
        });
        let hit = nwl.mapping_stats().hit_rate();
        let degradation = ipc_degradation(base.estimate(), model.estimate());
        println!(
            "NWL-{granularity:<2}  hit rate {:.1}%   IPC degradation {:.1}%",
            hit * 100.0,
            degradation * 100.0
        );
        summaries.push((granularity, hit, degradation));
    }

    // Coarser granularity covers more space per cache entry.
    assert!(summaries[1].1 > summaries[0].1, "NWL-64 should hit more than NWL-4");
    assert!(summaries[1].2 < summaries[0].2, "and lose less IPC");
}
