//! Attack resilience — how long does each wear-leveling scheme keep a
//! weak-endurance MLC device alive under the paper's two attacks?
//!
//! Replays the Repeated Address Attack (RAA) and the Birthday Paradox
//! Attack (BPA) against every scheme in the suite and prints the
//! normalized lifetime each one reaches — the paper's §2.2 threat analysis
//! in one table. Schemes with static mappings (Segment Swapping, RBSG)
//! collapse under RAA; randomized schemes survive RAA but differ sharply
//! under BPA.
//!
//! ```text
//! cargo run --release --example attack_resilience
//! ```

use sawl::sawl::SawlConfig;
use sawl::simctl::{run_all, DeviceSpec, Scenario, SchemeSpec, Table, WorkloadSpec};

fn main() {
    let data_lines: u64 = 1 << 14;
    let endurance: u32 = 2_000;
    let schemes: Vec<(&str, SchemeSpec)> = vec![
        ("baseline", SchemeSpec::Baseline),
        ("segment-swap", SchemeSpec::SegmentSwap { segment_lines: 64, swap_period: 100 }),
        ("rbsg", SchemeSpec::Rbsg { regions: 64, region_lines: 256, period: 64 }),
        ("tlsr", SchemeSpec::Tlsr { region_lines: 16, inner_period: 8, outer_period: 32 }),
        ("pcm-s", SchemeSpec::PcmS { region_lines: 16, period: 16 }),
        ("mwsr", SchemeSpec::Mwsr { region_lines: 16, period: 16 }),
        (
            // Same swapping period as the hybrids so the comparison
            // isolates the mapping architecture, not the exchange rate.
            "sawl",
            SchemeSpec::Sawl(SawlConfig {
                initial_granularity: 4,
                max_granularity: 64,
                cmt_entries: 1024,
                swap_period: 16,
                observation_window: 1 << 22,
                settling_window: 1 << 22,
                sample_interval: 100_000,
                ..SawlConfig::default()
            }),
        ),
        ("ideal", SchemeSpec::Ideal),
    ];
    let attacks: Vec<(&str, WorkloadSpec)> = vec![
        ("RAA", WorkloadSpec::Raa),
        ("BPA", WorkloadSpec::Bpa { writes_per_target: u64::from(endurance) }),
    ];

    let mut grid = Vec::new();
    for (sname, scheme) in &schemes {
        for (aname, attack) in &attacks {
            grid.push(Scenario::lifetime(
                format!("example/{sname}/{aname}"),
                scheme.clone(),
                attack.clone(),
                data_lines,
                DeviceSpec { endurance, ..Default::default() },
            ));
        }
    }
    let results = run_all(&grid).expect("scenario sweep failed");

    let mut table = Table::new(
        "Normalized lifetime under attack (% of ideal)",
        &["scheme", "RAA", "BPA", "BPA write overhead (%)"],
    );
    for (i, (sname, _)) in schemes.iter().enumerate() {
        let raa = results[i * 2].lifetime();
        let bpa = results[i * 2 + 1].lifetime();
        table.row(vec![
            sname.to_string(),
            format!("{:.1}", raa.normalized_lifetime * 100.0),
            format!("{:.1}", bpa.normalized_lifetime * 100.0),
            format!("{:.1}", bpa.overhead_fraction * 100.0),
        ]);
    }
    println!("{}", table.to_aligned_string());
    println!(
        "Static schemes fail RAA; randomized ones survive it; BPA separates the\n\
         hybrids from SAWL, which wear-levels at fine granularity without an\n\
         on-chip table bound."
    );
}
