//! Fault injection and crash recovery — a lifetime run under fire.
//!
//! Installs a fault plan on the device model (stuck lines, transient
//! write failures, scheduled power losses), runs a SAWL lifetime
//! experiment through it, and prints what the fault layer and the
//! journaled recovery path did: faults survived, crash recoveries,
//! journal replays/rollbacks, and spare-pool consumption.
//!
//! ```text
//! cargo run --release --example fault_recovery
//! ```

use sawl::simctl::{
    run_lifetime, DeviceSpec, FaultPlan, LifetimeExperiment, SchemeSpec, WorkloadSpec,
};

fn main() {
    // A birthday-paradox attack against SAWL on a 2^14-line device, with
    // a hostile environment layered on top: two factory-stuck lines, one
    // transient write failure per ~50k writes, and four power losses
    // scheduled across the run (write indices are total device writes, so
    // the crashes land inside wear-leveling exchanges as well as demand
    // traffic).
    let exp = LifetimeExperiment {
        id: "example/fault-recovery".into(),
        scheme: SchemeSpec::sawl_default(1024),
        workload: WorkloadSpec::Bpa { writes_per_target: 1_024 },
        data_lines: 1 << 14,
        device: DeviceSpec { endurance: 10_000, ..Default::default() },
        max_demand_writes: 0, // run to device death
        fault: Some(FaultPlan {
            stuck_lines: vec![42, 9_001],
            transient_rate: 2e-5,
            power_loss_at_writes: vec![1 << 20, 1 << 22, 1 << 23, 3 << 22],
            seed: 7,
        }),
        telemetry: None,
        timing: None,
    };

    let r = run_lifetime(&exp).expect("valid experiment");

    println!("scheme               : {}", r.scheme);
    println!("demand writes served : {}", r.demand_writes);
    println!("normalized lifetime  : {:.3}", r.normalized_lifetime);
    println!("wear Gini            : {:.3}", r.wear_gini);
    println!();
    println!("stuck lines remapped : {}", r.stuck_lines_remapped);
    println!("transient faults     : {}", r.transient_faults);
    println!("power losses         : {}", r.power_losses);
    println!("crash recoveries     : {}", r.recoveries);
    println!("journal replays      : {}", r.journal_replays);
    println!("journal rollbacks    : {}", r.journal_rollbacks);
    println!("spares remaining     : {}", r.spares_remaining);

    assert_eq!(r.recoveries, r.power_losses, "every crash must be recovered");
    assert!(r.stuck_lines_remapped == 2, "both stuck lines remap into spares");

    // The same experiment with a zero fault plan is byte-identical to the
    // fault-free run — the fault layer is pay-for-what-you-inject.
    let mut clean = exp.clone();
    clean.fault = Some(FaultPlan::default());
    let mut plain = exp.clone();
    plain.fault = None;
    let (clean, plain) = (run_lifetime(&clean).unwrap(), run_lifetime(&plain).unwrap());
    assert_eq!(clean, plain);
    println!();
    println!("zero-fault plan reproduces the fault-free run bit-for-bit");
}
