//! Quickstart — five minutes with the SAWL library.
//!
//! Builds an MLC-NVM device model, wraps it in the self-adaptive wear
//! leveler, plays a skewed workload at it, and prints what the engine did:
//! translation hit rate, region merges/splits, wear distribution, and the
//! lifetime the device would reach.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use sawl::nvm::{NvmConfig, NvmDevice};
use sawl::sawl::{Sawl, SawlConfig};
use sawl::simctl::pump;
use sawl::trace::Hotspot;

fn main() {
    // 1. Configure the engine: a 2^16-line logical space (4 MB at 64 B
    //    lines), initial granularity 4 lines, a small on-chip mapping
    //    cache, and the paper's adaptation parameters scaled down so the
    //    demo adapts within seconds.
    let cfg = SawlConfig {
        data_lines: 1 << 16,
        cmt_entries: 512,
        max_granularity: 256,
        sample_interval: 10_000,
        observation_window: 1 << 17,
        settling_window: 1 << 16,
        ..SawlConfig::default()
    };
    let mut sawl = Sawl::new(cfg);

    // 2. Build the device. SAWL stores its mapping table in the NVM
    //    itself, so the device must provide the data lines plus the
    //    reserved translation region.
    let device_cfg = NvmConfig::builder()
        .lines(sawl.required_physical_lines())
        .endurance(50_000)
        .build()
        .expect("valid device configuration");
    let mut device = NvmDevice::new(device_cfg);

    // 3. Drive a 90/10 hotspot workload through it, using the same request
    //    pump the experiment suite runs on.
    let mut workload = Hotspot::new(1 << 16, 0, 1 << 10, 0.9, 0.5, 42);
    pump(&mut sawl, &mut device, &mut workload, 2_000_000);

    // 4. See what happened.
    let stats = sawl.stats();
    let wear = device.wear();
    let dist = device.wear_stats();
    println!("requests served      : {}", wear.demand_writes + wear.reads);
    println!("CMT hit rate         : {:.1}%", stats.hit_rate() * 100.0);
    println!("region exchanges     : {}", stats.exchanges);
    println!("region merges/splits : {}/{}", stats.merges, stats.splits);
    println!("current region count : {}", stats.region_count);
    println!("write overhead       : {:.2}%", wear.overhead_fraction() * 100.0);
    println!("wear max/mean        : {:.2}", dist.wear_focus);
    println!("wear Gini            : {:.3} (0 = perfectly even)", dist.gini);
    assert!(stats.exchanges > 0, "expected wear-leveling activity");
}
